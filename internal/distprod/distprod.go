// Package distprod implements Proposition 2: computing the distance
// product of two matrices by binary search over a threshold matrix D,
// using a FindEdges solver on the Vassilevska Williams–Williams tripartite
// construction as the comparison oracle. It also provides the naive
// full-gossip distance product used by the O(n)-round baseline.
//
// The tripartite graph on I ∪ J ∪ K (|I|=|J|=|K|=n) has f(i,k) = A[i,k],
// f(j,k) = B[k,j] and f(i,j) = −D[i,j]; the pair {i,j} lies in a negative
// triangle exactly when min_k{A[i,k]+B[k,j]} < D[i,j]. The n-node network
// simulates the 3n-vertex instance with each node playing three vertices
// (a constant-factor overhead); the simulation realizes this as a 3n-node
// clique, which preserves the round-complexity shape.
package distprod

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"qclique/internal/congest"
	"qclique/internal/graph"
	"qclique/internal/matrix"
	"qclique/internal/triangles"
	"qclique/internal/xrand"
)

// Solver selects the FindEdges implementation driving the binary search.
type Solver int

const (
	// SolverQuantum uses the paper's Õ(n^{1/4}) quantum FindEdges
	// (Proposition 1 reduction over ComputePairs with Grover search).
	SolverQuantum Solver = iota + 1
	// SolverClassicalScan uses ComputePairs with the classical O(√n)
	// Step 3 scan.
	SolverClassicalScan
	// SolverDolev uses the Dolev–Lenzen–Peled Õ(n^{1/3}) triangle
	// listing (no promise reduction needed).
	SolverDolev
)

func (s Solver) String() string {
	switch s {
	case SolverQuantum:
		return "quantum"
	case SolverClassicalScan:
		return "classical-scan"
	case SolverDolev:
		return "dolev-listing"
	default:
		return fmt.Sprintf("Solver(%d)", int(s))
	}
}

// Options configures the product computation.
type Options struct {
	Solver Solver
	// Params forwards protocol constants to the triangles layer (nil =
	// paper constants).
	Params *triangles.Params
	Seed   uint64
	// Net accumulates costs across calls when non-nil; it must have 3n
	// nodes for an n×n product. When nil a fresh network is created per
	// call.
	Net *congest.Network
	// Workers bounds the host-side parallelism of node-local phases
	// (forwarded to the triangles layer); <= 0 selects GOMAXPROCS.
	Workers int
	// DisableIncremental forces a full tripartite rebuild on every binary
	// search step instead of the in-place threshold-leg rewrite. The two
	// paths are bit-identical (the regression tests assert it); the flag
	// exists so the equivalence stays testable and measurable.
	DisableIncremental bool
	// Workspace optionally supplies reusable solve state spanning Product
	// calls (the squaring chain makes ⌈log₂ n⌉ of them): the tripartite
	// reduction instance, the binary-search buffers, and the triangles-layer
	// scratch. When nil each call builds private state — identical results,
	// more allocation. Not safe for concurrent use.
	Workspace *Workspace
	// Grid, when non-nil, switches the per-entry binary search from the
	// exact value range [-M, M] to the given candidate ladder: each output
	// entry is the smallest grid value >= the exact product entry (the
	// (1+ε)-approximate product when the grid is a geometric ladder). The
	// search then takes ⌈log₂ |grid ∩ [0,M]|⌉+1 FindEdges calls instead of
	// ⌈log₂(4M+2)⌉+1 — the round-count win of the approximate pipeline.
	// The grid must be sorted in strictly increasing order, start at a
	// nonnegative value, and its last value must be >= the product's weight
	// bound M; grid mode also requires nonnegative inputs (the rounding
	// semantics are multiplicative).
	Grid []int64
	// Ctx, when non-nil, is checked before every binary-search step (each
	// a full FindEdges call) and forwarded to the triangles layer, so a
	// cancelled solve stops at the next step boundary. Checkpoints charge
	// nothing and leave completed steps' accounting untouched.
	Ctx context.Context
}

// ctxErr reports the options context's cancellation state (nil context
// means never cancelled).
func (o Options) ctxErr() error {
	if o.Ctx == nil {
		return nil
	}
	return o.Ctx.Err()
}

// Workspace is the reusable state of repeated Product calls. The static
// legs of the tripartite instance change between squaring iterations (the
// input matrices do), but the 3n-vertex graph, the pair set S, and every
// binary-search buffer are shape-identical across the whole chain, so they
// are rebuilt in place rather than reallocated.
type Workspace struct {
	inst    *tripartiteInstance
	d       *matrix.Matrix
	finite  []bool
	lo, hi  []int64
	scratch *triangles.Scratch
}

// NewWorkspace returns an empty Workspace; state is built on first use.
func NewWorkspace() *Workspace { return &Workspace{} }

// Scratch returns the triangles-layer scratch this workspace threads into
// its FindEdges calls, creating it on first use.
func (ws *Workspace) Scratch() *triangles.Scratch {
	if ws.scratch == nil {
		ws.scratch = triangles.NewScratch()
	}
	return ws.scratch
}

// instance returns the reduction instance for (a, b), rebuilding the static
// legs in place when the cached instance has the right shape.
func (ws *Workspace) instance(a, b *matrix.Matrix) (*tripartiteInstance, error) {
	if ws.inst != nil && ws.inst.n == a.N() {
		if err := ws.inst.resetStaticLegs(a, b); err != nil {
			return nil, err
		}
		return ws.inst, nil
	}
	inst, err := newTripartite(a, b)
	if err != nil {
		return nil, err
	}
	ws.inst = inst
	return inst, nil
}

// searchBuffers returns the threshold matrix and per-entry binary-search
// state for an n×n product, reused across calls. finite is cleared; lo and
// hi carry stale values but are only read where finite is set.
func (ws *Workspace) searchBuffers(n int) (d *matrix.Matrix, finite []bool, lo, hi []int64) {
	if ws.d == nil || ws.d.N() != n {
		ws.d = matrix.New(n)
	}
	if cap(ws.finite) < n*n {
		ws.finite = make([]bool, n*n)
		ws.lo = make([]int64, n*n)
		ws.hi = make([]int64, n*n)
	}
	finite = ws.finite[:n*n]
	clear(finite)
	return ws.d, finite, ws.lo[:n*n], ws.hi[:n*n]
}

// Stats reports the cost drivers of one product.
type Stats struct {
	// BinarySearchSteps is the number of FindEdges invocations,
	// ⌈log₂(4M+2)⌉ + 1 including the infinity probe.
	BinarySearchSteps int
	// Rounds is the total network rounds charged.
	Rounds int64
	// MaxAbs is the M the binary search ranged over.
	MaxAbs int64
}

// tripartite builds the reduction graph for threshold matrix D. Entries of
// A or B that are +Inf are omitted (no leg); -Inf entries are rejected by
// Product before reaching here.
func tripartite(a, b, d *matrix.Matrix) (*graph.Undirected, map[graph.Pair]bool, error) {
	inst, err := newTripartite(a, b)
	if err != nil {
		return nil, nil, err
	}
	if err := inst.ResetThresholdLeg(d); err != nil {
		return nil, nil, err
	}
	return inst.g, inst.s, nil
}

// tripartiteInstance is a reusable Vassilevska Williams–Williams reduction
// instance. The A-leg (I–K) and B-leg (J–K) edges depend only on the input
// matrices and are built once; the binary search then mutates only the
// threshold leg (the n² I–J edges) between FindEdges calls via
// ResetThresholdLeg, replacing the O(n²) full rebuild per step with an
// in-place block rewrite.
type tripartiteInstance struct {
	n   int
	g   *graph.Undirected
	s   map[graph.Pair]bool
	neg []int64 // scratch: row-major -D block handed to SetBipartiteBlock
}

// newTripartite builds the static legs of the reduction instance; the
// threshold leg starts absent and must be installed with ResetThresholdLeg
// before the instance is handed to a solver.
func newTripartite(a, b *matrix.Matrix) (*tripartiteInstance, error) {
	n := a.N()
	inst := &tripartiteInstance{
		n:   n,
		g:   graph.NewUndirected(3 * n),
		s:   make(map[graph.Pair]bool, n*n),
		neg: make([]int64, n*n),
	}
	if err := inst.setStaticLegs(a, b); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			inst.s[graph.MakePair(i, n+j)] = true
		}
	}
	return inst, nil
}

// setStaticLegs installs the A-leg (I–K) and B-leg (J–K) edges.
func (t *tripartiteInstance) setStaticLegs(a, b *matrix.Matrix) error {
	n := t.n
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			if v := a.At(i, k); graph.IsFinite(v) {
				if err := t.g.SetEdge(i, 2*n+k, v); err != nil {
					return err
				}
			}
			if v := b.At(k, i); graph.IsFinite(v) {
				// f(j,k) = B[k,j] with j = i here.
				if err := t.g.SetEdge(n+i, 2*n+k, v); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// resetStaticLegs rebuilds the instance in place for new input matrices of
// the same dimension: every edge (including the threshold leg, which the
// binary search reinstalls before any solve) is cleared and the A/B legs
// are re-set. The pair set S depends only on n and is kept.
func (t *tripartiteInstance) resetStaticLegs(a, b *matrix.Matrix) error {
	t.g.Clear()
	return t.setStaticLegs(a, b)
}

// ResetThresholdLeg rewrites the I–J edges to f(i,j) = -D[i,j] in place,
// leaving the A- and B-leg edges untouched.
func (t *tripartiteInstance) ResetThresholdLeg(d *matrix.Matrix) error {
	if d.N() != t.n {
		return fmt.Errorf("distprod: threshold matrix is %d×%d, instance is %d×%d", d.N(), d.N(), t.n, t.n)
	}
	for i := 0; i < t.n; i++ {
		for j := 0; j < t.n; j++ {
			t.neg[i*t.n+j] = -d.At(i, j)
		}
	}
	return t.g.SetBipartiteBlock(0, t.n, t.n, t.n, t.neg)
}

// solveFindEdges dispatches one FindEdges call to the configured solver.
func solveFindEdges(inst triangles.Instance, opts Options, seed uint64) (map[graph.Pair]bool, error) {
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	switch opts.Solver {
	case SolverDolev:
		rep, err := triangles.DolevFindEdgesCtx(ctx, inst, opts.Net)
		if err != nil {
			return nil, err
		}
		return rep.Edges, nil
	case SolverClassicalScan, SolverQuantum:
		mode := triangles.SearchQuantum
		if opts.Solver == SolverClassicalScan {
			mode = triangles.SearchClassicalScan
		}
		var sc *triangles.Scratch
		if opts.Workspace != nil {
			sc = opts.Workspace.Scratch()
		}
		rep, err := triangles.FindEdges(inst, triangles.Options{
			Params:  opts.Params,
			Mode:    mode,
			Seed:    seed,
			Net:     opts.Net,
			Workers: opts.Workers,
			Scratch: sc,
			Ctx:     opts.Ctx,
		})
		if err != nil {
			return nil, err
		}
		return rep.Edges, nil
	default:
		return nil, fmt.Errorf("distprod: unknown solver %v", opts.Solver)
	}
}

// Product computes A ⋆ B through the Proposition 2 binary search. Inputs
// must be free of −Inf entries (+Inf is allowed and means "no path").
func Product(a, b *matrix.Matrix, opts Options) (*matrix.Matrix, *Stats, error) {
	c := matrix.New(a.N())
	stats, err := ProductInto(c, a, b, opts)
	if err != nil {
		return nil, nil, err
	}
	return c, stats, nil
}

// ProductInto is Product writing into a caller-provided (workspace) matrix,
// which is overwritten entirely; the repeated-squaring driver ping-pongs
// two such matrices through the whole chain.
func ProductInto(c *matrix.Matrix, a, b *matrix.Matrix, opts Options) (*Stats, error) {
	if a.N() != b.N() {
		return nil, fmt.Errorf("distprod: dimension mismatch %d vs %d", a.N(), b.N())
	}
	n := a.N()
	if c.N() != n {
		return nil, fmt.Errorf("distprod: destination is %d×%d, want %d×%d", c.N(), c.N(), n, n)
	}
	if n == 0 {
		return &Stats{}, nil
	}
	grid := opts.Grid
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if a.At(i, j) <= graph.NegInf || b.At(i, j) <= graph.NegInf {
				return nil, errors.New("distprod: -Inf entries unsupported")
			}
			if grid != nil && (a.At(i, j) < 0 || b.At(i, j) < 0) {
				return nil, errors.New("distprod: grid mode requires nonnegative inputs")
			}
		}
	}
	if grid != nil {
		if len(grid) == 0 || grid[0] < 0 {
			return nil, errors.New("distprod: grid must be nonempty and nonnegative")
		}
		for t := 1; t < len(grid); t++ {
			if grid[t] <= grid[t-1] {
				return nil, fmt.Errorf("distprod: grid not strictly increasing at index %d", t)
			}
		}
	}
	ws := opts.Workspace
	if ws == nil {
		ws = NewWorkspace()
		opts.Workspace = ws
	}
	net := opts.Net
	var err error
	if net == nil {
		net, err = congest.NewNetwork(3 * n)
		if err != nil {
			return nil, err
		}
		opts.Net = net
	}
	baseline := net.Snapshot()
	rng := xrand.New(opts.Seed)

	m := a.MaxAbsFinite() + b.MaxAbsFinite() // bound on |C[i,j]| for finite entries
	stats := &Stats{MaxAbs: m}

	// Grid mode searches candidate indices instead of values: gridTop is the
	// first ladder index covering the weight bound, so every finite product
	// entry has its snap-up target inside grid[0..gridTop].
	var gridTop int64
	var zeroDiag bool
	if grid != nil {
		idx := len(grid) - 1
		if grid[idx] < m {
			return nil, fmt.Errorf("distprod: grid top %d does not cover weight bound %d", grid[idx], m)
		}
		gridTop = int64(gridIdxAtLeast(grid, m))
		// Squaring-chain monotonicity: when both inputs have a zero
		// diagonal, C[i,j] ≤ A[i,j] + B[j,j] = A[i,j] (and likewise B[i,j]),
		// so each entry's search can start capped at its current value.
		// Beyond halving depth for converged entries, this keeps the probe
		// thresholds at or below the current distances — and the FindEdges
		// cost of a probe tracks how many pairs sit under its threshold, so
		// low probes are the cheap ones.
		zeroDiag = true
		for i := 0; i < n; i++ {
			if a.At(i, i) != 0 || b.At(i, i) != 0 {
				zeroDiag = false
				break
			}
		}
	}

	// Build (or rebuild in place) the reduction instance once: the A/B legs
	// never change across the binary search, only the threshold leg is
	// rewritten per step.
	var inst *tripartiteInstance
	if !opts.DisableIncremental {
		inst, err = ws.instance(a, b)
		if err != nil {
			return nil, err
		}
	}
	// refresh installs D into the instance, rebuilding from scratch when
	// the incremental path is disabled (regression baseline).
	refresh := func(d *matrix.Matrix) (triangles.Instance, error) {
		if opts.DisableIncremental {
			g, s, err := tripartite(a, b, d)
			if err != nil {
				return triangles.Instance{}, err
			}
			return triangles.Instance{G: g, S: s}, nil
		}
		if err := inst.ResetThresholdLeg(d); err != nil {
			return triangles.Instance{}, err
		}
		return triangles.Instance{G: inst.g, S: inst.s}, nil
	}

	// Infinity probe: with D ≡ m+1, any pair NOT in a negative triangle
	// has C[i,j] ≥ m+1, i.e. C[i,j] = +Inf. The threshold matrix and the
	// per-entry search state live on the workspace, reused across steps,
	// products, and squaring iterations.
	d, finite, lo, hi := ws.searchBuffers(n)
	d.Fill(m + 1)
	if err := opts.ctxErr(); err != nil {
		return nil, err
	}
	ti, err := refresh(d)
	if err != nil {
		return nil, err
	}
	edges, err := solveFindEdges(ti, opts, rng.SplitN("step", 0).Seed())
	if err != nil {
		return nil, fmt.Errorf("distprod: infinity probe: %w", err)
	}
	stats.BinarySearchSteps++

	// Invariant: C[i,j] ∈ [lo, hi] for finite entries (lo/hi hold stale
	// values elsewhere and are only read under the finite mask). In grid
	// mode lo/hi hold ladder *indices* and the invariant is that the
	// snap-up target grid index lies in [lo, hi].
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if edges[graph.MakePair(i, n+j)] {
				finite[i*n+j] = true
				if grid != nil {
					top := gridTop
					if zeroDiag {
						if bound := min(a.At(i, j), b.At(i, j)); bound < m {
							top = int64(gridIdxAtLeast(grid, bound))
						}
					}
					lo[i*n+j] = 0
					hi[i*n+j] = top
				} else {
					lo[i*n+j] = -m
					hi[i*n+j] = m
				}
			}
		}
	}

	// Per-entry binary search, all entries advanced by one shared
	// FindEdges call per step.
	for step := 1; ; step++ {
		converged := true
		for idx := range lo {
			if finite[idx] && lo[idx] < hi[idx] {
				converged = false
				break
			}
		}
		if converged {
			break
		}
		// Cancellation checkpoint of the squaring chain's inner loop: every
		// step is a full FindEdges call, the natural unit a deadline skips.
		if err := opts.ctxErr(); err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				idx := i*n + j
				if !finite[idx] || lo[idx] >= hi[idx] {
					// Query a threshold that cannot trigger: D = -m keeps
					// resolved and infinite entries out of the output.
					d.Set(i, j, -m-1)
					continue
				}
				mid := floorMid(lo[idx], hi[idx])
				if grid != nil {
					// Probe "C ≤ grid[mid]", i.e. C < grid[mid]+1.
					d.Set(i, j, grid[mid]+1)
				} else {
					d.Set(i, j, mid+1)
				}
			}
		}
		ti, err := refresh(d)
		if err != nil {
			return nil, err
		}
		edges, err = solveFindEdges(ti, opts, rng.SplitN("step", step).Seed())
		if err != nil {
			return nil, fmt.Errorf("distprod: step %d: %w", step, err)
		}
		stats.BinarySearchSteps++
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				idx := i*n + j
				if !finite[idx] || lo[idx] >= hi[idx] {
					continue
				}
				mid := floorMid(lo[idx], hi[idx])
				if edges[graph.MakePair(i, n+j)] {
					// C[i,j] < mid+1 ⟹ C ≤ mid.
					hi[idx] = mid
				} else {
					lo[idx] = mid + 1
				}
			}
		}
	}

	c.Fill(graph.Inf)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			idx := i*n + j
			if finite[idx] {
				if grid != nil {
					c.Set(i, j, grid[lo[idx]])
				} else {
					c.Set(i, j, lo[idx])
				}
			}
		}
	}
	stats.Rounds = net.DeltaSince(baseline).Rounds
	return stats, nil
}

// gridIdxAtLeast returns the smallest index with grid[idx] >= v; the caller
// guarantees the grid top covers v.
func gridIdxAtLeast(grid []int64, v int64) int {
	return sort.Search(len(grid), func(i int) bool { return grid[i] >= v })
}

func floorMid(lo, hi int64) int64 {
	mid := (lo + hi) / 2
	if (lo+hi) < 0 && (lo+hi)%2 != 0 {
		mid-- // floor division for negative sums
	}
	return mid
}

// GossipProduct is the naive O(n)-round distance product: every node
// broadcasts its row of B (n words, full gossip), then computes its row of
// A ⋆ B locally. It operates on an n-node network.
func GossipProduct(net *congest.Network) matrix.Product {
	return GossipProductPar(net, 1)
}

// GossipProductPar is GossipProduct with the per-node local min-plus work
// spread over a bounded worker pool; workers <= 0 selects GOMAXPROCS. The
// network charge and the result are identical to GossipProduct.
func GossipProductPar(net *congest.Network, workers int) matrix.Product {
	return func(a, b *matrix.Matrix) (*matrix.Matrix, error) {
		if net != nil {
			if err := net.BroadcastAll("gossip-product", int64(b.N())); err != nil {
				return nil, err
			}
		}
		return matrix.DistanceProductPar(a, b, workers)
	}
}
