package distprod

import (
	"testing"

	"qclique/internal/matrix"
	"qclique/internal/xrand"
)

// TestWorkspaceReuseAcrossProducts reuses one Workspace across a sequence
// of products with different input matrices (the squaring-chain access
// pattern) and checks every result, stats, and round count against fresh
// per-call state.
func TestWorkspaceReuseAcrossProducts(t *testing.T) {
	rng := xrand.New(21)
	for _, solver := range []Solver{SolverDolev, SolverClassicalScan, SolverQuantum} {
		ws := NewWorkspace()
		for trial := 0; trial < 4; trial++ {
			n := 3 + trial%3 // shape changes mid-sequence
			a := randomMatrix(n, 9, 0.25, rng.SplitN("a", trial*10+int(solver)))
			b := randomMatrix(n, 9, 0.25, rng.SplitN("b", trial*10+int(solver)))
			seed := uint64(trial)

			fresh, freshStats, err := Product(a, b, Options{Solver: solver, Seed: seed})
			if err != nil {
				t.Fatalf("%v trial %d fresh: %v", solver, trial, err)
			}
			dst := matrix.New(n)
			dst.Fill(-99) // stale destination contents must not survive
			pooledStats, err := ProductInto(dst, a, b, Options{Solver: solver, Seed: seed, Workspace: ws})
			if err != nil {
				t.Fatalf("%v trial %d pooled: %v", solver, trial, err)
			}
			if !fresh.Equal(dst) {
				t.Fatalf("%v trial %d: pooled product differs:\n%v\nvs\n%v", solver, trial, dst, fresh)
			}
			if freshStats.Rounds != pooledStats.Rounds || freshStats.BinarySearchSteps != pooledStats.BinarySearchSteps {
				t.Fatalf("%v trial %d: stats differ: %+v vs %+v", solver, trial, freshStats, pooledStats)
			}
			want, err := matrix.DistanceProduct(a, b)
			if err != nil {
				t.Fatal(err)
			}
			if !dst.Equal(want) {
				t.Fatalf("%v trial %d: product wrong", solver, trial)
			}
		}
	}
}

// TestResetStaticLegsMatchesFresh rebuilds a cached tripartite instance in
// place for new inputs and compares every edge against a from-scratch
// build.
func TestResetStaticLegsMatchesFresh(t *testing.T) {
	rng := xrand.New(31)
	const n = 5
	a0 := randomMatrix(n, 7, 0.3, rng.Split("a0"))
	b0 := randomMatrix(n, 7, 0.3, rng.Split("b0"))
	inst, err := newTripartite(a0, b0)
	if err != nil {
		t.Fatal(err)
	}
	a1 := randomMatrix(n, 11, 0.1, rng.Split("a1"))
	b1 := randomMatrix(n, 11, 0.6, rng.Split("b1"))
	if err := inst.resetStaticLegs(a1, b1); err != nil {
		t.Fatal(err)
	}
	want, err := newTripartite(a1, b1)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 3*n; u++ {
		for v := u + 1; v < 3*n; v++ {
			iw, iok := inst.g.Weight(u, v)
			ww, wok := want.g.Weight(u, v)
			if iw != ww || iok != wok {
				t.Fatalf("edge {%d,%d}: reset (%d,%v) vs fresh (%d,%v)", u, v, iw, iok, ww, wok)
			}
		}
	}
}
