package distprod

import (
	"testing"

	"qclique/internal/graph"
	"qclique/internal/matrix"
	"qclique/internal/xrand"
)

// TestResetThresholdLegMatchesRebuild drives one reduction instance through
// a sequence of threshold matrices and checks that the in-place rewrite
// produces a graph identical to a from-scratch tripartite build after every
// step.
func TestResetThresholdLegMatchesRebuild(t *testing.T) {
	rng := xrand.New(7)
	const n = 6
	a := randomMatrix(n, 12, 0.2, rng.Split("a"))
	b := randomMatrix(n, 12, 0.2, rng.Split("b"))
	inst, err := newTripartite(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 8; step++ {
		d := matrix.New(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				d.Set(i, j, rng.Int64N(51)-25)
			}
		}
		if err := inst.ResetThresholdLeg(d); err != nil {
			t.Fatal(err)
		}
		g, s, err := tripartite(a, b, d)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < 3*n; u++ {
			for v := u + 1; v < 3*n; v++ {
				iw, iok := inst.g.Weight(u, v)
				rw, rok := g.Weight(u, v)
				if iw != rw || iok != rok {
					t.Fatalf("step %d: edge {%d,%d}: incremental (%d,%v) vs rebuild (%d,%v)",
						step, u, v, iw, iok, rw, rok)
				}
			}
		}
		if len(s) != len(inst.s) {
			t.Fatalf("step %d: S size %d vs %d", step, len(inst.s), len(s))
		}
		for p := range s {
			if !inst.s[p] {
				t.Fatalf("step %d: S missing pair %v", step, p)
			}
		}
	}
}

func TestResetThresholdLegDimensionMismatch(t *testing.T) {
	rng := xrand.New(9)
	a := randomMatrix(4, 5, 0, rng.Split("a"))
	inst, err := newTripartite(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.ResetThresholdLeg(matrix.New(5)); err == nil {
		t.Fatal("dimension mismatch must be rejected")
	}
}

// TestProductIncrementalBitIdentical is the regression guard for the
// incremental hot path: for every solver, the incremental threshold-leg
// rewrite must produce bit-identical products, stats and round counts to
// the full per-step rebuild.
func TestProductIncrementalBitIdentical(t *testing.T) {
	rng := xrand.New(11)
	for _, solver := range []Solver{SolverDolev, SolverClassicalScan, SolverQuantum} {
		for trial := 0; trial < 3; trial++ {
			n := 3 + trial
			a := randomMatrix(n, 9, 0.25, rng.SplitN("a", trial*10+int(solver)))
			b := randomMatrix(n, 9, 0.25, rng.SplitN("b", trial*10+int(solver)))
			seed := uint64(trial)

			inc, incStats, err := Product(a, b, Options{Solver: solver, Seed: seed})
			if err != nil {
				t.Fatalf("%v trial %d incremental: %v", solver, trial, err)
			}
			reb, rebStats, err := Product(a, b, Options{Solver: solver, Seed: seed, DisableIncremental: true})
			if err != nil {
				t.Fatalf("%v trial %d rebuild: %v", solver, trial, err)
			}
			if !inc.Equal(reb) {
				t.Fatalf("%v trial %d: products differ:\n%v\nvs\n%v", solver, trial, inc, reb)
			}
			if incStats.Rounds != rebStats.Rounds || incStats.BinarySearchSteps != rebStats.BinarySearchSteps {
				t.Fatalf("%v trial %d: stats differ: %+v vs %+v", solver, trial, incStats, rebStats)
			}
			want, err := matrix.DistanceProduct(a, b)
			if err != nil {
				t.Fatal(err)
			}
			if !inc.Equal(want) {
				t.Fatalf("%v trial %d: product wrong:\n%v\nwant\n%v", solver, trial, inc, want)
			}
		}
	}
}

// TestSetBipartiteBlockValidation exercises the graph-layer API backing
// ResetThresholdLeg.
func TestSetBipartiteBlockValidation(t *testing.T) {
	g := graph.NewUndirected(6)
	if err := g.SetBipartiteBlock(0, 2, 2, 2, []int64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if w, ok := g.Weight(1, 3); !ok || w != 4 {
		t.Fatalf("block write lost: weight(1,3) = (%d,%v)", w, ok)
	}
	if w, ok := g.Weight(3, 1); !ok || w != 4 {
		t.Fatalf("block write asymmetric: weight(3,1) = (%d,%v)", w, ok)
	}
	// NoEdge entries delete.
	if err := g.SetBipartiteBlock(0, 2, 2, 2, []int64{graph.NoEdge, graph.NoEdge, graph.NoEdge, graph.NoEdge}); err != nil {
		t.Fatal(err)
	}
	if g.EdgeCount() != 0 {
		t.Fatalf("NoEdge block left %d edges", g.EdgeCount())
	}
	if err := g.SetBipartiteBlock(0, 3, 2, 2, nil); err == nil {
		t.Fatal("overlapping ranges must be rejected")
	}
	if err := g.SetBipartiteBlock(0, 2, 5, 2, make([]int64, 4)); err == nil {
		t.Fatal("out-of-range block must be rejected")
	}
	if err := g.SetBipartiteBlock(0, 2, 2, 2, make([]int64, 3)); err == nil {
		t.Fatal("wrong weight count must be rejected")
	}
}
