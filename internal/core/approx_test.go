package core

import (
	"errors"
	"testing"

	"qclique/internal/approx"
	"qclique/internal/graph"
	"qclique/internal/matrix"
	"qclique/internal/triangles"
	"qclique/internal/xrand"
)

func nonnegDigraph(t *testing.T, n int, seed uint64) *graph.Digraph {
	t.Helper()
	g, err := graph.RandomDigraph(n, graph.DigraphOpts{ArcProb: 0.4, MinWeight: 0, MaxWeight: 8}, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSolveEpsilonValidation(t *testing.T) {
	g := nonnegDigraph(t, 6, 1)
	if _, err := Solve(g, Config{Strategy: StrategyGossip, Epsilon: 0.5}); err == nil {
		t.Error("epsilon on an exact strategy must fail")
	}
	if _, err := Solve(g, Config{Strategy: StrategyApproxQuantum}); err == nil {
		t.Error("approximate strategy without epsilon must fail")
	}
	if _, err := Solve(g, Config{Strategy: StrategyApproxSkeleton, Epsilon: -1}); err == nil {
		t.Error("negative epsilon must fail")
	}
}

func TestSolveApproxQuantum(t *testing.T) {
	params := triangles.BenchParams()
	g := nonnegDigraph(t, 14, 3)
	res, err := Solve(g, Config{Strategy: StrategyApproxQuantum, Params: &params, Seed: 0, Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epsilon != 0.5 || res.GuaranteedStretch != 1.5 {
		t.Errorf("epsilon echo = %v guarantee = %v, want 0.5 and 1.5", res.Epsilon, res.GuaranteedStretch)
	}
	if res.ObservedStretch < 1 || res.ObservedStretch > res.GuaranteedStretch {
		t.Errorf("observed stretch %v outside [1, %v]", res.ObservedStretch, res.GuaranteedStretch)
	}
	if res.Rounds <= 0 || res.FindEdgesCalls <= 0 || res.Products <= 0 {
		t.Errorf("approx solve accounted no work: %+v", res)
	}
	// Negative weights are rejected, not silently mis-approximated.
	neg := graph.NewDigraph(4)
	if err := neg.SetArc(0, 1, -2); err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(neg, Config{Strategy: StrategyApproxQuantum, Epsilon: 0.5}); !errors.Is(err, approx.ErrNegativeWeight) {
		t.Errorf("negative weights: err = %v, want ErrNegativeWeight", err)
	}
}

func TestSolveApproxSkeleton(t *testing.T) {
	g, err := graph.RandomSymmetricDigraph(20, graph.DigraphOpts{ArcProb: 0.2, MinWeight: 1, MaxWeight: 10}, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(g, Config{Strategy: StrategyApproxSkeleton, Seed: 1, Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.GuaranteedStretch != 2.5 {
		t.Errorf("guarantee = %v, want 2.5", res.GuaranteedStretch)
	}
	if res.ObservedStretch < 1 || res.ObservedStretch > res.GuaranteedStretch {
		t.Errorf("observed stretch %v outside [1, %v]", res.ObservedStretch, res.GuaranteedStretch)
	}
	if res.Rounds <= 0 {
		t.Error("skeleton solve charged no rounds")
	}
	asym := nonnegDigraph(t, 8, 2)
	if _, err := Solve(asym, Config{Strategy: StrategyApproxSkeleton, Epsilon: 0.5}); !errors.Is(err, approx.ErrAsymmetric) {
		t.Errorf("asymmetric input: err = %v, want ErrAsymmetric", err)
	}
}

// TestApproxQuantumFewerRounds pins the point of the strategy: at ε=0.5 the
// ladder-searched chain must charge strictly fewer rounds than the exact
// pipeline on the same graph.
func TestApproxQuantumFewerRounds(t *testing.T) {
	params := triangles.BenchParams()
	g := nonnegDigraph(t, 32, 32)
	exact, err := Solve(g, Config{Strategy: StrategyQuantum, Params: &params, Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	ap, err := Solve(g, Config{Strategy: StrategyApproxQuantum, Params: &params, Seed: 0, Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if ap.Rounds >= exact.Rounds {
		t.Errorf("approx rounds %d not below exact %d", ap.Rounds, exact.Rounds)
	}
	if ap.FindEdgesCalls >= exact.FindEdgesCalls {
		t.Errorf("approx FindEdges calls %d not below exact %d", ap.FindEdgesCalls, exact.FindEdgesCalls)
	}
}

// TestApproxWorkspaceDeterminism mirrors the exact pipeline's pooled-vs-
// fresh guarantee for the approximate chain.
func TestApproxWorkspaceDeterminism(t *testing.T) {
	params := triangles.BenchParams()
	g := nonnegDigraph(t, 12, 9)
	ws := NewWorkspace()
	var prev *matrix.Matrix
	for i := 0; i < 3; i++ {
		cfg := Config{Strategy: StrategyApproxQuantum, Params: &params, Seed: 4, Epsilon: 0.3}
		if i > 0 {
			cfg.Workspace = ws
		}
		res, err := Solve(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && !res.Dist.Equal(prev) {
			t.Fatalf("run %d: pooled and fresh approx solves differ", i)
		}
		prev = res.Dist
	}
}
