package core

// The −∞ probe: a 2-cycle of weight −1 paired with an all-NegInf distance
// matrix, the exact shape that used to make path reconstruction fabricate
// a "shortest path". SaturatingAdd(w, −∞) == −∞ renders every arc into
// the −∞ region tight, so without the guards both ReconstructPath and the
// oracle would happily return [0 1] for a pair that has no shortest path
// at all.

import (
	"errors"
	"testing"

	"qclique/internal/graph"
	"qclique/internal/matrix"
)

// negCycleProbe returns the 2-cycle of weight −1 and the all-NegInf matrix.
func negCycleProbe(t *testing.T) (*graph.Digraph, *matrix.Matrix) {
	t.Helper()
	g := graph.NewDigraph(2)
	if err := g.SetArc(0, 1, -1); err != nil {
		t.Fatal(err)
	}
	if err := g.SetArc(1, 0, 0); err != nil {
		t.Fatal(err)
	}
	dist := matrix.New(2)
	dist.Fill(graph.NegInf)
	return g, dist
}

func TestReconstructPathUndefinedDistance(t *testing.T) {
	g, dist := negCycleProbe(t)
	for src := 0; src < 2; src++ {
		for dst := 0; dst < 2; dst++ {
			path, err := ReconstructPath(g, dist, src, dst)
			if !errors.Is(err, ErrUndefinedDistance) {
				t.Errorf("(%d,%d): path = %v, err = %v; want ErrUndefinedDistance", src, dst, path, err)
			}
		}
	}
}

func TestPathOracleUndefinedDistance(t *testing.T) {
	g, dist := negCycleProbe(t)
	oracle, err := NewPathOracle(g, dist)
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < 2; src++ {
		for dst := 0; dst < 2; dst++ {
			if path, err := oracle.Path(src, dst); !errors.Is(err, ErrUndefinedDistance) {
				t.Errorf("Path(%d,%d) = %v, err = %v; want ErrUndefinedDistance", src, dst, path, err)
			}
			if _, err := oracle.Dist(src, dst); !errors.Is(err, ErrUndefinedDistance) {
				t.Errorf("Dist(%d,%d): err = %v, want ErrUndefinedDistance", src, dst, err)
			}
		}
	}
}

// TestUndefinedDistanceMixedMatrix checks the guards fire per-pair, not
// per-matrix: finite pairs keep answering next to a −∞ region.
func TestUndefinedDistanceMixedMatrix(t *testing.T) {
	g := graph.NewDigraph(3)
	if err := g.SetArc(0, 1, 4); err != nil {
		t.Fatal(err)
	}
	dist := matrix.Identity(3)
	dist.Set(0, 1, 4)
	dist.Set(2, 0, graph.NegInf)
	dist.Set(2, 1, graph.NegInf)

	if path, err := ReconstructPath(g, dist, 0, 1); err != nil || len(path) != 2 {
		t.Errorf("finite pair: path = %v, err = %v", path, err)
	}
	if _, err := ReconstructPath(g, dist, 2, 1); !errors.Is(err, ErrUndefinedDistance) {
		t.Errorf("undefined pair: err = %v, want ErrUndefinedDistance", err)
	}
	oracle, err := NewPathOracle(g, dist)
	if err != nil {
		t.Fatal(err)
	}
	if d, err := oracle.Dist(0, 1); err != nil || d != 4 {
		t.Errorf("finite Dist = %d, %v", d, err)
	}
	if _, err := oracle.Path(2, 0); !errors.Is(err, ErrUndefinedDistance) {
		t.Errorf("undefined Path: err = %v, want ErrUndefinedDistance", err)
	}
}

// TestSolveNegativeCycleStillErrors pins the solver-level behavior the
// serving layers rely on: the probe graph itself solves to
// ErrNegativeCycle before any distance can be served.
func TestSolveNegativeCycleStillErrors(t *testing.T) {
	g, _ := negCycleProbe(t)
	if _, err := Solve(g, Config{Strategy: StrategyGossip}); !errors.Is(err, ErrNegativeCycle) {
		t.Errorf("negative 2-cycle: err = %v, want ErrNegativeCycle", err)
	}
}
