package core

// The cross-backend equivalence suite: the sharded transport must be
// bit-identical to the local reference — distances, rounds, words, per-stage
// sums, and armed fault schedules — for every registered strategy. This is
// the gate that makes transport selection a pure host-side choice, and what
// a future multi-process backend will be held to.

import (
	"fmt"
	"testing"

	"qclique/internal/congest"
	"qclique/internal/engine"
	"qclique/internal/graph"
)

var equivStrategies = []Strategy{
	StrategyQuantum, StrategyClassicalSearch, StrategyDolev, StrategyGossip,
	StrategyApproxQuantum, StrategyApproxSkeleton,
}

// solveOn runs one solve on the named transport. Workers=4 on the sharded
// backend keeps multiple shards in play at every test size.
func solveOn(t *testing.T, g *graph.Digraph, base Config, transport string) *Result {
	t.Helper()
	cfg := base
	cfg.Transport = transport
	if transport == congest.TransportSharded {
		cfg.Workers = 4
	}
	res, err := Solve(g, cfg)
	if err != nil {
		t.Fatalf("transport %q: %v", transport, err)
	}
	return res
}

// requireEquivalent fails on any divergence between a local and a sharded
// run of the same solve.
func requireEquivalent(t *testing.T, tag string, local, sharded *Result) {
	t.Helper()
	if !sharded.Dist.Equal(local.Dist) {
		t.Errorf("%s: distances diverge across transports", tag)
	}
	if sharded.Rounds != local.Rounds {
		t.Errorf("%s: rounds diverge: local %d, sharded %d", tag, local.Rounds, sharded.Rounds)
	}
	if sharded.Metrics.Words != local.Metrics.Words || sharded.Metrics.Phases != local.Metrics.Phases {
		t.Errorf("%s: words/phases diverge: local %d/%d, sharded %d/%d", tag,
			local.Metrics.Words, local.Metrics.Phases, sharded.Metrics.Words, sharded.Metrics.Phases)
	}
	if len(sharded.Stages) != len(local.Stages) {
		t.Errorf("%s: stage counts diverge: local %d, sharded %d", tag, len(local.Stages), len(sharded.Stages))
		return
	}
	for i := range local.Stages {
		ls, ss := local.Stages[i], sharded.Stages[i]
		if ls.Name != ss.Name || ls.Rounds != ss.Rounds || ls.Words != ss.Words || ls.Phases != ss.Phases {
			t.Errorf("%s: stage %q diverges: local %d/%d/%d, sharded %d/%d/%d", tag, ls.Name,
				ls.Rounds, ls.Words, ls.Phases, ss.Rounds, ss.Words, ss.Phases)
		}
	}
	if sum := engine.SumRounds(sharded.Stages); sum != sharded.Rounds {
		t.Errorf("%s: sharded stage rounds %d do not sum to total %d", tag, sum, sharded.Rounds)
	}
	if got := sharded.Transport.Transport; got != congest.TransportSharded {
		t.Errorf("%s: result attributes transport %q, want %q", tag, got, congest.TransportSharded)
	}
}

// TestTransportEquivalenceAllStrategies: all strategies × n ∈ {8, 16, 32} ×
// seeds {0, 1, 2}, distances + rounds + words + per-stage sums bit-identical
// local vs sharded.
func TestTransportEquivalenceAllStrategies(t *testing.T) {
	sizes := []int{8, 16, 32}
	seeds := []uint64{0, 1, 2}
	if testing.Short() {
		sizes = []int{8, 16}
		seeds = []uint64{0}
	}
	for _, s := range equivStrategies {
		for _, n := range sizes {
			for _, seed := range seeds {
				tag := fmt.Sprintf("%v/n=%d/seed=%d", s, n, seed)
				g := chaosInput(t, s, n, seed+uint64(n))
				cfg := chaosConfig(s)
				cfg.Seed = seed
				local := solveOn(t, g, cfg, congest.DefaultTransport)
				sharded := solveOn(t, g, cfg, congest.TransportSharded)
				requireEquivalent(t, tag, local, sharded)
			}
		}
	}
}

// TestTransportEquivalenceFaultSchedules: an armed FaultPlan must replay
// the identical fault schedule on every backend — injection happens in the
// Network above the transport, so counters, surcharged rounds and distances
// all have to match.
func TestTransportEquivalenceFaultSchedules(t *testing.T) {
	plan := congest.FaultPlan{
		Seed: 42, DropRate: 0.2, DupRate: 0.1, DelayRate: 0.1, MaxDelayRounds: 2,
		CorruptRate: 0.05, CrashRate: 0.02, CrashDownPhases: 1, MaxFaults: 1,
	}
	sizes := []int{8, 16}
	strategies := equivStrategies
	if testing.Short() {
		strategies = []Strategy{StrategyQuantum, StrategyApproxSkeleton}
	}
	for _, s := range strategies {
		for _, n := range sizes {
			tag := fmt.Sprintf("%v/n=%d", s, n)
			g := chaosInput(t, s, n, uint64(n))
			cfg := chaosConfig(s)
			cfg.Faults = plan
			local := solveOn(t, g, cfg, congest.DefaultTransport)
			sharded := solveOn(t, g, cfg, congest.TransportSharded)
			requireEquivalent(t, tag, local, sharded)
			if local.Metrics.Faults != sharded.Metrics.Faults {
				t.Errorf("%s: fault schedules diverge: local %+v, sharded %+v",
					tag, local.Metrics.Faults, sharded.Metrics.Faults)
			}
		}
	}
}
