package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"qclique/internal/engine"
	"qclique/internal/graph"
	"qclique/internal/triangles"
	"qclique/internal/xrand"
)

// engineTestStrategies is every registered pipeline with a config that
// satisfies its input contract on the given graph class.
func engineTestStrategies() []Config {
	params := triangles.BenchParams()
	return []Config{
		{Strategy: StrategyQuantum, Params: &params},
		{Strategy: StrategyClassicalSearch, Params: &params},
		{Strategy: StrategyDolev, Params: &params},
		{Strategy: StrategyGossip},
		{Strategy: StrategyApproxQuantum, Params: &params, Epsilon: 0.5},
		{Strategy: StrategyApproxSkeleton, Epsilon: 0.5},
	}
}

// testGraphFor returns a graph in the strategy's input class.
func testGraphFor(t *testing.T, s Strategy, n int) *graph.Digraph {
	t.Helper()
	rng := xrand.New(uint64(n) * 7)
	var g *graph.Digraph
	var err error
	switch s {
	case StrategyApproxSkeleton:
		g, err = graph.RandomSymmetricDigraph(n, graph.DigraphOpts{
			ArcProb: 0.3, MinWeight: 1, MaxWeight: 9,
		}, rng)
	case StrategyApproxQuantum:
		g, err = graph.RandomDigraph(n, graph.DigraphOpts{
			ArcProb: 0.4, MinWeight: 0, MaxWeight: 8,
		}, rng)
	default:
		g, err = graph.RandomDigraph(n, graph.DigraphOpts{
			ArcProb: 0.4, MinWeight: -4, MaxWeight: 8, NoNegativeCycles: true,
		}, rng)
	}
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestStageRoundsSumToTotal is the acceptance invariant of the engine
// refactor: for every strategy and n ∈ {8, 16, 32}, the per-stage rounds
// in Result sum exactly to Result.Rounds.
func TestStageRoundsSumToTotal(t *testing.T) {
	for _, cfg := range engineTestStrategies() {
		for _, n := range []int{8, 16, 32} {
			g := testGraphFor(t, cfg.Strategy, n)
			res, err := Solve(g, cfg)
			if err != nil {
				t.Fatalf("%v n=%d: %v", cfg.Strategy, n, err)
			}
			if len(res.Stages) == 0 {
				t.Fatalf("%v n=%d: no stage telemetry", cfg.Strategy, n)
			}
			if sum := engine.SumRounds(res.Stages); sum != res.Rounds {
				t.Errorf("%v n=%d: stage rounds sum %d != total %d (stages %+v)",
					cfg.Strategy, n, sum, res.Rounds, res.Stages)
			}
		}
	}
}

// TestSolveContextAlreadyCancelledReturnsPromptly pins the public
// cancellation contract at the core layer: an already-cancelled context
// must return context.Canceled well under 100ms at n=64, without running
// the pipeline.
func TestSolveContextAlreadyCancelledReturnsPromptly(t *testing.T) {
	g := testGraphFor(t, StrategyQuantum, 64)
	params := triangles.BenchParams()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, err := SolveContext(ctx, g, Config{Strategy: StrategyQuantum, Params: &params})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 100*time.Millisecond {
		t.Fatalf("cancelled solve took %v, want < 100ms", elapsed)
	}
	if res == nil {
		t.Fatal("cancelled solve should carry (empty) partial telemetry")
	}
	if res.Dist != nil {
		t.Fatal("cancelled solve must not produce distances")
	}
	if res.Rounds != 0 {
		t.Fatalf("already-cancelled solve charged %d rounds", res.Rounds)
	}
}

// TestCancelAtEveryStageBoundaryLeavesWorkspaceReusable is the pooled-
// workspace regression: cancel a solve at each stage boundary in turn,
// then re-solve on the same workspace and demand results bit-identical to
// a fresh-workspace solve.
func TestCancelAtEveryStageBoundaryLeavesWorkspaceReusable(t *testing.T) {
	for _, cfg := range engineTestStrategies() {
		n := 16
		g := testGraphFor(t, cfg.Strategy, n)

		want, err := Solve(g, cfg)
		if err != nil {
			t.Fatalf("%v: reference solve: %v", cfg.Strategy, err)
		}
		stageCount := len(want.Stages)
		if stageCount == 0 {
			t.Fatalf("%v: no stages to cancel at", cfg.Strategy)
		}

		ws := NewWorkspace()
		for k := 0; k < stageCount; k++ {
			ctx, cancel := context.WithCancel(context.Background())
			cancelCfg := cfg
			cancelCfg.Workspace = ws
			cancelCfg.StageHook = func(i int, name string) {
				if i == k {
					cancel()
				}
			}
			res, err := SolveContext(ctx, g, cancelCfg)
			cancel()
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("%v: cancel at stage %d: err = %v, want context.Canceled", cfg.Strategy, k, err)
			}
			if len(res.Stages) != k {
				t.Fatalf("%v: cancel at stage boundary %d recorded %d stages", cfg.Strategy, k, len(res.Stages))
			}

			// Re-solve on the same (possibly partially warmed) workspace:
			// rounds and distances must match the fresh solve exactly.
			retryCfg := cfg
			retryCfg.Workspace = ws
			got, err := Solve(g, retryCfg)
			if err != nil {
				t.Fatalf("%v: re-solve after cancel at %d: %v", cfg.Strategy, k, err)
			}
			if got.Rounds != want.Rounds {
				t.Errorf("%v: re-solve after cancel at %d: rounds %d != %d", cfg.Strategy, k, got.Rounds, want.Rounds)
			}
			if !got.Dist.Equal(want.Dist) {
				t.Errorf("%v: re-solve after cancel at %d: distances differ from a fresh solve", cfg.Strategy, k)
			}
		}
	}
}

// TestSolveContextDeadlineInsideStage exercises the in-stage checkpoints
// (binary-search steps, triangle enumeration): a deadline that expires
// mid-pipeline must stop the solve with DeadlineExceeded and partial
// telemetry, and the same workspace must then reproduce a fresh solve.
func TestSolveContextDeadlineInsideStage(t *testing.T) {
	params := triangles.BenchParams()
	g := testGraphFor(t, StrategyQuantum, 32)
	ws := NewWorkspace()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	res, err := SolveContext(ctx, g, Config{Strategy: StrategyQuantum, Params: &params, Workspace: ws})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded (n=32 cannot finish in 5ms)", err)
	}
	if res == nil {
		t.Fatal("deadline-expired solve should carry partial telemetry")
	}

	want, err := Solve(g, Config{Strategy: StrategyQuantum, Params: &params})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Solve(g, Config{Strategy: StrategyQuantum, Params: &params, Workspace: ws})
	if err != nil {
		t.Fatal(err)
	}
	if got.Rounds != want.Rounds || !got.Dist.Equal(want.Dist) {
		t.Fatal("workspace reused after a mid-stage deadline produced a different result")
	}
}

// TestStrategyRegistryCoversEveryEnum pins the enum ↔ registry mapping:
// every Strategy enum value resolves to a registered pipeline whose
// canonical name round-trips, and the registry holds nothing unmapped.
func TestStrategyRegistryCoversEveryEnum(t *testing.T) {
	for _, s := range AllStrategies() {
		st, ok := s.Pipeline()
		if !ok {
			t.Errorf("strategy %v has no registered pipeline", s)
			continue
		}
		if st.Name() != s.String() {
			t.Errorf("strategy %v maps to pipeline %q", s, st.Name())
		}
		back, ok := StrategyByName(st.Name())
		if !ok || back != s {
			t.Errorf("StrategyByName(%q) = %v, %v; want %v", st.Name(), back, ok, s)
		}
		if st.Approximate() != (s == StrategyApproxQuantum || s == StrategyApproxSkeleton) {
			t.Errorf("strategy %v approximate flag mismatch", s)
		}
	}
	for _, st := range engine.Strategies() {
		if _, ok := StrategyByName(st.Name()); !ok {
			// Tests may register private strategies; only complain about
			// the production names.
			switch st.Name() {
			case "quantum", "classical-search", "dolev", "gossip", "approx-quantum", "approx-skeleton":
				t.Errorf("registered strategy %q has no enum", st.Name())
			}
		}
	}
}

// TestGuaranteeComesFromRegistry pins the stretch contract surfaced per
// strategy.
func TestGuaranteeComesFromRegistry(t *testing.T) {
	cases := []struct {
		s    Strategy
		eps  float64
		want float64
	}{
		{StrategyQuantum, 0, 1},
		{StrategyGossip, 0, 1},
		{StrategyApproxQuantum, 0.5, 1.5},
		{StrategyApproxSkeleton, 0.25, 2.25},
	}
	for _, c := range cases {
		st, ok := c.s.Pipeline()
		if !ok {
			t.Fatalf("%v unregistered", c.s)
		}
		if got := st.Guarantee(c.eps); got != c.want {
			t.Errorf("%v.Guarantee(%v) = %v, want %v", c.s, c.eps, got, c.want)
		}
	}
}
