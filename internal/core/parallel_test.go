package core

import (
	"testing"

	"qclique/internal/matrix"
	"qclique/internal/triangles"
	"qclique/internal/xrand"
)

// TestParallelWorkersDeterministic asserts the seeded-run reproducibility
// contract of the worker pool: for every strategy, the solve with a
// parallel worker pool must produce bit-identical distances and round
// counts to the serial run.
func TestParallelWorkersDeterministic(t *testing.T) {
	for _, strat := range []Strategy{StrategyQuantum, StrategyClassicalSearch, StrategyDolev, StrategyGossip} {
		for _, n := range []int{5, 9} {
			g := randomAPSPInput(t, n, uint64(n))
			params := triangles.BenchParams()
			serial, err := Solve(g, Config{Strategy: strat, Params: &params, Seed: 3, Workers: 1})
			if err != nil {
				t.Fatalf("%v n=%d serial: %v", strat, n, err)
			}
			for _, workers := range []int{2, 4, 7} {
				parallel, err := Solve(g, Config{Strategy: strat, Params: &params, Seed: 3, Workers: workers})
				if err != nil {
					t.Fatalf("%v n=%d workers=%d: %v", strat, n, workers, err)
				}
				if !parallel.Dist.Equal(serial.Dist) {
					t.Fatalf("%v n=%d workers=%d: distances diverge from serial", strat, n, workers)
				}
				if parallel.Rounds != serial.Rounds {
					t.Fatalf("%v n=%d workers=%d: rounds %d != serial %d",
						strat, n, workers, parallel.Rounds, serial.Rounds)
				}
			}
		}
	}
}

// TestDistanceProductParMatchesSerial pins the parallel row-split min-plus
// product to the serial reference on larger inputs.
func TestDistanceProductParMatchesSerial(t *testing.T) {
	rng := xrand.New(21)
	n := 33
	mk := func(r *xrand.Source) *matrix.Matrix {
		m := matrix.New(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if r.Bool(0.3) {
					continue
				}
				m.Set(i, j, r.Int64N(41)-20)
			}
		}
		return m
	}
	a, b := mk(rng.Split("a")), mk(rng.Split("b"))
	want, err := matrix.DistanceProduct(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 8} {
		got, err := matrix.DistanceProductPar(a, b, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("workers=%d: parallel product differs from serial", workers)
		}
	}
}
