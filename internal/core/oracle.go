package core

// Multi-query projection out of one solved APSP result. ReconstructPath
// answers a single (src,dst) query with an O(n²) tight-arc BFS; a serving
// workload asks for hundreds of paths against the same distance matrix, so
// PathOracle amortizes the per-destination work: one reverse BFS over the
// tight subgraph per distinct destination yields a successor array that
// answers every source for that destination in O(path length).

import (
	"fmt"
	"sync"

	"qclique/internal/graph"
	"qclique/internal/matrix"
)

// PathOracle answers shortest-path queries against one solved distance
// matrix, building and caching a per-destination successor array on first
// use. It is safe for concurrent use; the graph and matrix must not be
// mutated while the oracle is alive.
type PathOracle struct {
	g    *graph.Digraph
	dist *matrix.Matrix

	mu   sync.Mutex
	succ map[int][]int // dst -> successor toward dst per vertex (-1 = none)
}

// NewPathOracle returns an oracle over g and its exact APSP solution dist
// (as produced by Solve). Dimension mismatches are rejected.
func NewPathOracle(g *graph.Digraph, dist *matrix.Matrix) (*PathOracle, error) {
	if g == nil || dist == nil {
		return nil, fmt.Errorf("core: nil graph or matrix")
	}
	if dist.N() != g.N() {
		return nil, fmt.Errorf("core: distance matrix is %d×%d for an n=%d graph", dist.N(), dist.N(), g.N())
	}
	return &PathOracle{g: g, dist: dist}, nil
}

// Dist returns d(src, dst) from the underlying matrix (graph.Inf for
// unreachable pairs). A −∞ entry — the negative-cycle region, where no
// shortest distance exists — yields ErrUndefinedDistance rather than the
// sentinel, so serving layers cannot mistake "undefined" for a number.
func (o *PathOracle) Dist(src, dst int) (int64, error) {
	n := o.g.N()
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return 0, fmt.Errorf("core: endpoints (%d,%d) out of range", src, dst)
	}
	d := o.dist.At(src, dst)
	if d <= graph.NegInf {
		return 0, ErrUndefinedDistance
	}
	return d, nil
}

// successors returns (building if needed) the successor array for dst: for
// every vertex u that can reach dst, succ[u] is a neighbor k with
// w(u,k) + d(k,dst) = d(u,dst), chosen hop-minimally by a reverse BFS from
// dst over tight arcs. succ[dst] = dst.
func (o *PathOracle) successors(dst int) []int {
	o.mu.Lock()
	if s, ok := o.succ[dst]; ok {
		o.mu.Unlock()
		return s
	}
	o.mu.Unlock()

	// Build outside the lock: concurrent batch queries to distinct
	// destinations must run their O(n²) BFS in parallel, not serialized
	// on one mutex. A lost race costs a redundant (identical) build.
	succ := o.buildSuccessors(dst)

	o.mu.Lock()
	defer o.mu.Unlock()
	if s, ok := o.succ[dst]; ok {
		return s
	}
	if o.succ == nil {
		o.succ = make(map[int][]int)
	}
	o.succ[dst] = succ
	return succ
}

func (o *PathOracle) buildSuccessors(dst int) []int {
	n := o.g.N()
	succ := make([]int, n)
	for i := range succ {
		succ[i] = -1
	}
	succ[dst] = dst
	queue := []int{dst}
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		dk := o.dist.At(k, dst)
		for u := 0; u < n; u++ {
			if succ[u] != -1 || u == k {
				continue
			}
			w, ok := o.g.Weight(u, k)
			if !ok {
				continue
			}
			if graph.SaturatingAdd(w, dk) == o.dist.At(u, dst) {
				succ[u] = k
				queue = append(queue, u)
			}
		}
	}
	return succ
}

// Path returns one shortest path from src to dst (inclusive of both
// endpoints). Unreachable pairs yield ErrNoPath, pairs in the −∞ region
// yield ErrUndefinedDistance; a matrix inconsistent with the graph yields
// a descriptive error rather than a wrong path.
func (o *PathOracle) Path(src, dst int) ([]int, error) {
	n := o.g.N()
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return nil, fmt.Errorf("core: endpoints (%d,%d) out of range", src, dst)
	}
	if o.dist.At(src, dst) >= graph.Inf {
		return nil, ErrNoPath
	}
	if o.dist.At(src, dst) <= graph.NegInf {
		// SaturatingAdd(w, −∞) == −∞ makes every arc into the −∞ region
		// "tight": without this guard the successor walk would fabricate a
		// path for a pair whose distance is undefined.
		return nil, ErrUndefinedDistance
	}
	if src == dst {
		return []int{src}, nil
	}
	succ := o.successors(dst)
	if succ[src] == -1 {
		return nil, fmt.Errorf("core: destination unreachable through tight arcs; distance matrix inconsistent with graph")
	}
	path := []int{src}
	for cur := src; cur != dst; {
		cur = succ[cur]
		path = append(path, cur)
		if len(path) > n {
			return nil, fmt.Errorf("core: successor cycle; distance matrix inconsistent with graph")
		}
	}
	return path, nil
}
