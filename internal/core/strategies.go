package core

// The four exact pipelines, expressed as engine strategies: each solve is
// an ordered list of named stages over one network, so the engine can
// checkpoint between stages (cancellation) and attribute every round to a
// stage (telemetry). The stage decomposition mirrors the paper's structure:
// an encode stage (A_G, zero rounds), one stage per distance product of the
// Proposition 3 squaring chain, and an extract stage. Round accounting is
// bit-identical to the pre-engine monolithic driver: the same network, the
// same operation order, the same seed derivation.

import (
	"context"
	"fmt"
	"math"
	"time"

	"qclique/internal/congest"
	"qclique/internal/distprod"
	"qclique/internal/engine"
	"qclique/internal/graph"
	"qclique/internal/matrix"
	"qclique/internal/xrand"
)

// Stage-retry budgets for unrecovered injected faults (congest.FaultError):
// the search pipelines spend many phases per stage, so they get the larger
// budget; gossip's stages are single broadcasts. The backoff base is small
// — the simulator retries in-process, the backoff exists to be measured
// (StageStat.BackoffNs) and to model the recovery pause a real transport
// would take.
var (
	searchRetry = engine.RetryPolicy{MaxRetries: 4, Backoff: 250 * time.Microsecond}
	gossipRetry = engine.RetryPolicy{MaxRetries: 2, Backoff: 250 * time.Microsecond}
)

func init() {
	engine.Register(&searchPipeline{name: "quantum", solver: distprod.SolverQuantum})
	engine.Register(&searchPipeline{name: "classical-search", solver: distprod.SolverClassicalScan}, "classical")
	engine.Register(&searchPipeline{name: "dolev", solver: distprod.SolverDolev}, "dolev-listing")
	engine.Register(gossipPipeline{})
}

// strategyNames maps canonical registry names back to the Strategy enum —
// built by enumeration so a new enum value cannot silently miss the map.
var strategyNames = func() map[string]Strategy {
	m := make(map[string]Strategy)
	for _, s := range AllStrategies() {
		m[s.String()] = s
	}
	return m
}()

// AllStrategies lists every Strategy enum value.
func AllStrategies() []Strategy {
	return []Strategy{
		StrategyQuantum, StrategyClassicalSearch, StrategyDolev, StrategyGossip,
		StrategyApproxQuantum, StrategyApproxSkeleton,
	}
}

// StrategyByName resolves a canonical registry name (a Strategy's String
// form) back to its enum value.
func StrategyByName(name string) (Strategy, bool) {
	s, ok := strategyNames[name]
	return s, ok
}

// searchPipeline is the FindEdges-driven exact pipeline (Theorem 1 and its
// classical baselines): ⌈log₂ n⌉ distance products, each a binary search
// over FindEdges calls on the tripartite reduction.
type searchPipeline struct {
	name   string
	solver distprod.Solver
}

func (p *searchPipeline) Name() string              { return p.name }
func (p *searchPipeline) Approximate() bool         { return false }
func (p *searchPipeline) Guarantee(float64) float64 { return 1 }

// costAnchor is one committed benchmark measurement (BENCH_1.json, scaled
// preset) plus the power-law exponents that extrapolate it across sizes.
type costAnchor struct {
	n         int
	prior     engine.CostPrior
	roundsExp float64
	wallExp   float64
}

// searchAnchors hold the exact search pipelines' cost anchors at n=64. The
// quantum entry is measured (E1APSPQuantum/n=64); the classical baselines
// run the same reduction with costlier per-product searches, so their
// anchors are scaled guesses ordered by the theorems (Õ(√n) > Õ(n^{1/3}) >
// Õ(n^{1/4}) per product) — coarse priors the planner corrects with live
// telemetry after the first solve.
var searchAnchors = map[string]costAnchor{
	"quantum":          {n: 64, prior: engine.CostPrior{Rounds: 615_866, WallNs: 2_240_000_000}, roundsExp: 1.5, wallExp: 3.2},
	"classical-search": {n: 64, prior: engine.CostPrior{Rounds: 1_400_000, WallNs: 4_000_000_000}, roundsExp: 1.6, wallExp: 3.2},
	"dolev":            {n: 64, prior: engine.CostPrior{Rounds: 900_000, WallNs: 3_000_000_000}, roundsExp: 1.55, wallExp: 3.2},
}

func (p *searchPipeline) Capabilities() engine.Capabilities { return engine.Capabilities{} }

func (p *searchPipeline) PredictCost(f graph.Features, _ float64) engine.CostPrior {
	a := searchAnchors[p.name]
	prior := a.prior.ScaleFrom(a.n, f.N, a.roundsExp, a.wallExp)
	// Each distance product binary-searches ⌈log₂(4M+2)⌉ FindEdges calls;
	// the anchors were measured at W=8, so a wider weight range deepens
	// every product proportionally.
	if w := f.MaxAbsWeight; w > 8 {
		factor := math.Log2(float64(4*w+2)) / math.Log2(34)
		prior.Rounds = int64(float64(prior.Rounds) * factor)
		prior.WallNs = int64(float64(prior.WallNs) * factor)
	}
	return prior
}

func (p *searchPipeline) Stages(req *engine.Request, out *engine.Outcome) (*engine.Plan, error) {
	n := req.G.N()
	// The reduction runs on tripartite instances with 3n vertices; each
	// network node simulates three of them (constant-factor overhead),
	// realized as a 3n-node clique.
	net, err := congest.NewNetwork(3*n, congest.WithTraceLimit(4096), congest.WithFaults(req.Faults),
		congest.WithTransport(req.Transport), congest.WithTransportShards(req.Workers))
	if err != nil {
		return nil, err
	}
	st := &searchRun{req: req, out: out, net: net, solver: p.solver, rng: xrand.New(req.Seed)}
	stages := []engine.Stage{{Name: "encode", Run: st.encode}}
	for i := 0; i < matrix.SquaringBudget(n); i++ {
		stages = append(stages, engine.Stage{Name: fmt.Sprintf("square-%d", i+1), Run: st.square})
	}
	stages = append(stages, engine.Stage{Name: "extract", Run: st.extract})
	return &engine.Plan{Net: net, Stages: stages, Cleanup: st.release, Retry: searchRetry}, nil
}

// searchRun is the mutable state the stages of one searchPipeline solve
// share: the ping-pong matrices borrowed from the workspace and the
// cumulative FindEdges-call counter that drives the per-product seeds.
type searchRun struct {
	req    *engine.Request
	out    *engine.Outcome
	net    *congest.Network
	solver distprod.Solver
	rng    *xrand.Source

	cur, next *matrix.Matrix
	calls     int
}

func (st *searchRun) encode(context.Context) error {
	ag := matrix.FromDigraph(st.req.G)
	n := ag.N()
	st.cur = st.req.MX.Get(n)
	if err := ag.CloneInto(st.cur); err != nil {
		return err
	}
	if n > 1 {
		st.next = st.req.MX.Get(n)
	}
	return nil
}

func (st *searchRun) square(ctx context.Context) error {
	stats, err := distprod.ProductInto(st.next, st.cur, st.cur, distprod.Options{
		Solver:    st.solver,
		Params:    st.req.Params,
		Seed:      st.rng.SplitN("product", st.calls).Seed(),
		Net:       st.net,
		Workers:   st.req.Workers,
		Workspace: st.req.DP,
		Ctx:       ctx,
	})
	if err != nil {
		return err
	}
	st.calls += stats.BinarySearchSteps
	st.out.Products++
	st.cur, st.next = st.next, st.cur
	return nil
}

func (st *searchRun) extract(context.Context) error {
	if st.next != nil {
		st.req.MX.Put(st.next)
		st.next = nil
	}
	st.out.Dist = st.cur
	st.out.FindEdgesCalls = st.calls
	st.cur = nil
	return nil
}

// release returns checked-out matrices after an interrupted run, so a
// cancelled solve leaves the pooled workspace in a reusable state.
func (st *searchRun) release() {
	st.req.MX.Put(st.cur)
	st.req.MX.Put(st.next)
	st.cur, st.next = nil, nil
}

// gossipPipeline is the naive O(n)-round baseline: one full adjacency
// gossip, then local repeated squaring at every node.
type gossipPipeline struct{}

func (gossipPipeline) Name() string              { return "gossip" }
func (gossipPipeline) Approximate() bool         { return false }
func (gossipPipeline) Guarantee(float64) float64 { return 1 }

func (gossipPipeline) Capabilities() engine.Capabilities { return engine.Capabilities{} }

func (gossipPipeline) PredictCost(f graph.Features, _ float64) engine.CostPrior {
	// The full row gossip is ~n rounds (every node pushes its n-word row
	// over n−1 links); the wall cost is the node-local O(n³·log n) squaring
	// chain that follows.
	n := float64(f.N)
	if n < 2 {
		n = 2
	}
	return engine.CostPrior{
		Rounds: int64(n),
		WallNs: int64(50 * n * n * n * math.Log2(n)),
	}
}

func (gossipPipeline) Stages(req *engine.Request, out *engine.Outcome) (*engine.Plan, error) {
	n := req.G.N()
	net, err := congest.NewNetwork(n, congest.WithFaults(req.Faults),
		congest.WithTransport(req.Transport), congest.WithTransportShards(req.Workers))
	if err != nil {
		return nil, err
	}
	var ag *matrix.Matrix
	return &engine.Plan{Net: net, Retry: gossipRetry, Stages: []engine.Stage{
		{Name: "encode", Run: func(context.Context) error {
			ag = matrix.FromDigraph(req.G)
			return nil
		}},
		{Name: "gossip", Run: func(context.Context) error {
			return net.BroadcastAll("gossip/rows", int64(n))
		}},
		{Name: "local-squaring", Run: func(ctx context.Context) error {
			// All communication already happened; the squaring chain is
			// node-local, checkpointed per squaring.
			prod := func(dst, a, b *matrix.Matrix) error {
				if err := ctx.Err(); err != nil {
					return err
				}
				return matrix.MulMinPlusInto(dst, a, b, req.Workers)
			}
			dist, sq, err := matrix.APSPBySquaringInto(ag, prod, req.MX)
			if err != nil {
				return err
			}
			out.Dist = dist
			out.Products = sq.Products
			return nil
		}},
	}}, nil
}
