package core

// The chaos suite: fault-injection determinism (same plan → identical
// distances, rounds and counters, run after run), zero-plan bit-identity
// (an armed-but-empty plan changes nothing), and convergence of every
// registered strategy under a mixed fault plan at n ∈ {8, 16, 32}.

import (
	"testing"

	"qclique/internal/congest"
	"qclique/internal/graph"
	"qclique/internal/triangles"
	"qclique/internal/xrand"
)

// chaosInput builds the densest input class a strategy accepts: negative
// weights for the exact pipelines, nonnegative for the (1+ε) chain,
// symmetric nonnegative for the skeleton.
func chaosInput(t *testing.T, s Strategy, n int, seed uint64) *graph.Digraph {
	t.Helper()
	rng := xrand.New(seed)
	var (
		g   *graph.Digraph
		err error
	)
	switch {
	case s == StrategyApproxSkeleton:
		g, err = graph.RandomSymmetricDigraph(n, graph.DigraphOpts{
			ArcProb: 0.3, MinWeight: 1, MaxWeight: 20,
		}, rng)
	case s.IsApproximate():
		g, err = graph.RandomDigraph(n, graph.DigraphOpts{
			ArcProb: 0.4, MinWeight: 0, MaxWeight: 14,
		}, rng)
	default:
		g, err = graph.RandomDigraph(n, graph.DigraphOpts{
			ArcProb: 0.4, MinWeight: -6, MaxWeight: 14, NoNegativeCycles: true,
		}, rng)
	}
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func chaosConfig(s Strategy) Config {
	p := triangles.BenchParams()
	cfg := Config{Strategy: s, Params: &p, Seed: 5}
	if s.IsApproximate() {
		cfg.Epsilon = 0.5
	}
	return cfg
}

// TestChaosDeterminism: the fault schedule is a pure function of the plan
// — three runs under the same plan produce identical distances, rounds and
// fault counters for exact and approximate pipelines alike.
func TestChaosDeterminism(t *testing.T) {
	plan := congest.FaultPlan{
		Seed: 42, DropRate: 0.2, DupRate: 0.1, DelayRate: 0.1, MaxDelayRounds: 2,
		CorruptRate: 0.05, CrashRate: 0.02, CrashDownPhases: 1, MaxFaults: 1,
	}
	for _, s := range []Strategy{StrategyQuantum, StrategyApproxQuantum, StrategyApproxSkeleton} {
		for _, n := range []int{8, 16} {
			g := chaosInput(t, s, n, uint64(n))
			cfg := chaosConfig(s)
			cfg.Faults = plan
			first, err := Solve(g, cfg)
			if err != nil {
				t.Fatalf("%v/n=%d: %v", s, n, err)
			}
			for run := 1; run < 3; run++ {
				again, err := Solve(g, cfg)
				if err != nil {
					t.Fatalf("%v/n=%d run %d: %v", s, n, run, err)
				}
				if !again.Dist.Equal(first.Dist) {
					t.Fatalf("%v/n=%d run %d: distances diverged", s, n, run)
				}
				if again.Rounds != first.Rounds {
					t.Fatalf("%v/n=%d run %d: rounds %d != %d", s, n, run, again.Rounds, first.Rounds)
				}
				if again.Metrics.Faults != first.Metrics.Faults {
					t.Fatalf("%v/n=%d run %d: fault counters diverged: %+v vs %+v",
						s, n, run, again.Metrics.Faults, first.Metrics.Faults)
				}
			}
		}
	}
}

// TestZeroPlanKeepsSolvesBitIdentical: arming the pipeline with an empty
// plan is free — rounds, words and distances match the unarmed solve for
// every registered strategy.
func TestZeroPlanKeepsSolvesBitIdentical(t *testing.T) {
	for _, s := range []Strategy{
		StrategyGossip, StrategyDolev, StrategyClassicalSearch, StrategyQuantum,
		StrategyApproxQuantum, StrategyApproxSkeleton,
	} {
		g := chaosInput(t, s, 12, 3)
		plain, err := Solve(g, chaosConfig(s))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		cfg := chaosConfig(s)
		cfg.Faults = congest.FaultPlan{} // armed, injects nothing
		armed, err := Solve(g, cfg)
		if err != nil {
			t.Fatalf("%v armed: %v", s, err)
		}
		if !armed.Dist.Equal(plain.Dist) {
			t.Errorf("%v: zero plan changed distances", s)
		}
		if armed.Rounds != plain.Rounds || armed.Metrics.Words != plain.Metrics.Words {
			t.Errorf("%v: zero plan changed accounting: rounds %d/%d words %d/%d",
				s, armed.Rounds, plain.Rounds, armed.Metrics.Words, plain.Metrics.Words)
		}
		if armed.Metrics.Faults.Injected() != 0 {
			t.Errorf("%v: zero plan injected faults: %+v", s, armed.Metrics.Faults)
		}
	}
}

// TestChaosConvergenceAllStrategies: under a mixed plan of recovered link
// faults plus one budgeted unrecovered fault, every strategy's retry
// machinery converges to the fault-free distances at n ∈ {8, 16, 32}.
func TestChaosConvergenceAllStrategies(t *testing.T) {
	plan := congest.FaultPlan{
		Seed: 20190729, DropRate: 0.1, DupRate: 0.05, DelayRate: 0.05, MaxDelayRounds: 2,
		CorruptRate: 0.05, CrashRate: 0.02, CrashDownPhases: 1, MaxFaults: 1,
	}
	sizes := []int{8, 16, 32}
	if testing.Short() {
		sizes = []int{8, 16}
	}
	for _, s := range []Strategy{
		StrategyGossip, StrategyDolev, StrategyClassicalSearch, StrategyQuantum,
		StrategyApproxQuantum, StrategyApproxSkeleton,
	} {
		for _, n := range sizes {
			g := chaosInput(t, s, n, 7*uint64(n))
			clean, err := Solve(g, chaosConfig(s))
			if err != nil {
				t.Fatalf("%v/n=%d clean: %v", s, n, err)
			}
			cfg := chaosConfig(s)
			cfg.Faults = plan
			armed, err := Solve(g, cfg)
			if err != nil {
				t.Fatalf("%v/n=%d: armed solve did not converge: %v", s, n, err)
			}
			if !armed.Dist.Equal(clean.Dist) {
				t.Fatalf("%v/n=%d: armed distances diverged from fault-free", s, n)
			}
			if armed.Rounds < clean.Rounds {
				t.Errorf("%v/n=%d: armed rounds %d below fault-free %d", s, n, armed.Rounds, clean.Rounds)
			}
		}
	}
}
