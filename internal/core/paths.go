package core

// Path reconstruction (footnote 1 of the paper): the pipelines compute
// shortest-path *lengths*; the standard successor-matrix technique
// recovers the paths themselves from the distance matrix plus local
// adjacency rows, at a polylogarithmic extra cost in the distributed
// setting (each node i picks, per destination j, any neighbor k with
// w(i,k) + d(k,j) = d(i,j); the gossip strategy already leaves d at every
// node, and the reduction-based strategies ship each row back to its owner
// as part of the output convention).

import (
	"errors"
	"fmt"

	"qclique/internal/graph"
	"qclique/internal/matrix"
)

// ErrNoPath is returned by ReconstructPath for unreachable pairs.
var ErrNoPath = errors.New("core: no path")

// ErrUndefinedDistance is returned for pairs whose distance is −∞ (the
// negative-cycle region of a distance matrix): no shortest path exists, so
// returning any vertex sequence would be fabrication. The guard matters
// because SaturatingAdd(w, −∞) == −∞ makes every arc into the −∞ region
// look "tight" — without it, path reconstruction happily walks into the
// region and returns a bogus path.
var ErrUndefinedDistance = errors.New("core: distance undefined (negative-cycle region)")

// ReconstructPath returns one shortest path from src to dst as a vertex
// sequence (inclusive of both endpoints), using the solved distance matrix
// dist and the input graph g. It requires dist to be the exact APSP
// solution of g (as produced by Solve); inconsistent inputs yield an
// error rather than a wrong path.
func ReconstructPath(g *graph.Digraph, dist *matrix.Matrix, src, dst int) ([]int, error) {
	n := g.N()
	if dist.N() != n {
		return nil, fmt.Errorf("core: distance matrix is %d×%d for an n=%d graph", dist.N(), dist.N(), n)
	}
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return nil, fmt.Errorf("core: endpoints (%d,%d) out of range", src, dst)
	}
	if dist.At(src, dst) >= graph.Inf {
		return nil, ErrNoPath
	}
	if dist.At(src, dst) <= graph.NegInf {
		return nil, ErrUndefinedDistance
	}
	// An arc (u,k) is "tight" for destination dst when
	// w(u,k) + d(k,dst) = d(u,dst); every shortest path consists solely of
	// tight arcs and dst is reachable from src inside the tight subgraph.
	// A BFS over tight arcs yields the hop-minimal shortest path, which
	// terminates even in the presence of zero-weight cycles.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	parent[src] = src
	queue := []int{src}
	for len(queue) > 0 && parent[dst] == -1 {
		cur := queue[0]
		queue = queue[1:]
		for k := 0; k < n; k++ {
			if parent[k] != -1 || k == cur {
				continue
			}
			w, ok := g.Weight(cur, k)
			if !ok {
				continue
			}
			if graph.SaturatingAdd(w, dist.At(k, dst)) == dist.At(cur, dst) {
				parent[k] = cur
				queue = append(queue, k)
			}
		}
	}
	if parent[dst] == -1 {
		return nil, fmt.Errorf("core: destination unreachable through tight arcs; distance matrix inconsistent with graph")
	}
	var rev []int
	for cur := dst; cur != src; cur = parent[cur] {
		rev = append(rev, cur)
	}
	rev = append(rev, src)
	path := make([]int, len(rev))
	for i, v := range rev {
		path[len(rev)-1-i] = v
	}
	return path, nil
}

// PathWeight sums the arc weights along a path in g; it errors on a broken
// path.
func PathWeight(g *graph.Digraph, path []int) (int64, error) {
	if len(path) == 0 {
		return 0, errors.New("core: empty path")
	}
	var total int64
	for i := 0; i+1 < len(path); i++ {
		w, ok := g.Weight(path[i], path[i+1])
		if !ok {
			return 0, fmt.Errorf("core: missing arc %d->%d", path[i], path[i+1])
		}
		total = graph.SaturatingAdd(total, w)
	}
	return total, nil
}

// SolveSSSP computes single-source shortest distances from src by running
// the full APSP pipeline and projecting one row — per the paper, the
// Õ(n^{1/4}) APSP algorithm is also the best known exact SSSP algorithm in
// the CONGEST-CLIQUE model.
func SolveSSSP(g *graph.Digraph, src int, cfg Config) ([]int64, *Result, error) {
	if g == nil {
		return nil, nil, errors.New("core: nil graph")
	}
	if src < 0 || src >= g.N() {
		return nil, nil, fmt.Errorf("core: source %d out of range", src)
	}
	res, err := Solve(g, cfg)
	if err != nil {
		return nil, res, err
	}
	return res.Dist.Row(src), res, nil
}
