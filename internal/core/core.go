// Package core assembles the paper's headline result (Theorem 1): exact
// All-Pairs Shortest Paths over directed graphs with integer weights in
// {−W..W} in the CONGEST-CLIQUE model, computed as ⌈log₂ n⌉ distance
// products (Proposition 3), each via O(log M) FindEdges calls
// (Proposition 2), each via O(log n) FindEdgesWithPromise instances
// (Proposition 1), each solved by Algorithm ComputePairs with distributed
// quantum search (Theorem 2). Alternative strategies swap the
// FindEdges solver (classical scan, Dolev listing) or bypass the chain
// entirely (full gossip), giving the baselines the experiments compare.
package core

import (
	"context"
	"errors"
	"fmt"

	"qclique/internal/approx"
	"qclique/internal/congest"
	"qclique/internal/distprod"
	"qclique/internal/engine"
	"qclique/internal/graph"
	"qclique/internal/matrix"
	"qclique/internal/triangles"
)

// Strategy selects the APSP pipeline.
type Strategy int

const (
	// StrategyQuantum is the paper's Õ(n^{1/4}·log W) pipeline (Theorem 1).
	StrategyQuantum Strategy = iota + 1
	// StrategyClassicalSearch is the same pipeline with the classical
	// O(√n) Step 3 scan: Õ(√n·log W) rounds.
	StrategyClassicalSearch
	// StrategyDolev drives the reductions with Dolev–Lenzen–Peled triangle
	// listing: Õ(n^{1/3}·log W) rounds, the Censor-Hillel et al.
	// complexity (the classical state of the art the paper cites).
	StrategyDolev
	// StrategyGossip is the naive baseline: every node broadcasts its row
	// (O(n) rounds) and solves locally.
	StrategyGossip
	// StrategyApproxQuantum is the (1+ε)-approximate squaring chain: the
	// quantum pipeline with every distance product snapped onto a geometric
	// value ladder, cutting the per-product binary-search depth from
	// ⌈log₂(4M+2)⌉ to ⌈log₂(ladder length)⌉ FindEdges calls. Requires
	// nonnegative weights and Config.Epsilon > 0.
	StrategyApproxQuantum
	// StrategyApproxSkeleton is the (2+ε) skeleton strategy in the spirit
	// of Censor-Hillel et al. (arXiv:1903.05956): exact k-nearest balls, a
	// sampled-and-patched skeleton solved on the (1+ε/2) ladder, estimates
	// combined through skeleton hubs. Requires a weight-symmetric
	// nonnegative graph and Config.Epsilon > 0.
	StrategyApproxSkeleton
	// StrategyAuto defers the pipeline choice to the serving layer's
	// planner, which resolves it to a concrete registered strategy before
	// any pipeline runs. It is a request-level sentinel, not a pipeline:
	// it has no registry entry, AllStrategies excludes it, and Solve
	// rejects it unresolved.
	StrategyAuto
)

func (s Strategy) String() string {
	switch s {
	case StrategyQuantum:
		return "quantum"
	case StrategyClassicalSearch:
		return "classical-search"
	case StrategyDolev:
		return "dolev"
	case StrategyGossip:
		return "gossip"
	case StrategyApproxQuantum:
		return "approx-quantum"
	case StrategyApproxSkeleton:
		return "approx-skeleton"
	case StrategyAuto:
		return "auto"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// IsApproximate reports whether the strategy trades exactness for rounds
// (and therefore requires Config.Epsilon > 0). The registered pipeline is
// the source of truth; enum values without a registered pipeline are
// treated as exact (Solve rejects them anyway).
func (s Strategy) IsApproximate() bool {
	if st, ok := engine.Lookup(s.String()); ok {
		return st.Approximate()
	}
	return false
}

// Pipeline returns the registered engine strategy backing this enum value.
func (s Strategy) Pipeline() (engine.Strategy, bool) {
	return engine.Lookup(s.String())
}

// ErrNegativeCycle mirrors graph.ErrNegativeCycle at the solver level.
var ErrNegativeCycle = graph.ErrNegativeCycle

// Config configures an APSP solve.
type Config struct {
	// Strategy selects the pipeline; the zero value is StrategyQuantum.
	Strategy Strategy
	// Params forwards protocol constants (nil = paper constants).
	Params *triangles.Params
	// Seed drives all protocol randomness.
	Seed uint64
	// Workers bounds the host-side parallelism of node-local phases
	// (oracle evaluation, Grover state-vector updates, local min-plus
	// work); <= 0 selects GOMAXPROCS. Dist and Rounds are identical for
	// every setting — parallelism only changes wall-clock time.
	Workers int
	// Transport selects the congest delivery backend by registered name
	// ("" = "local", the single-goroutine reference; "sharded" partitions
	// nodes across Workers shards). Backends are bit-identical in Dist,
	// Rounds and fault schedules by contract — the choice only moves
	// host-side work. Unknown names fail the solve.
	Transport string
	// Epsilon is the multiplicative stretch budget of the approximate
	// strategies: StrategyApproxQuantum guarantees 1+ε, StrategyApproxSkeleton
	// 2+ε. It must be > 0 for those strategies and 0 (unset) for the exact
	// ones — epsilon is part of a result's identity, so silently ignoring
	// it would alias distinct solves.
	Epsilon float64
	// Workspace optionally supplies reusable solve state so repeated solves
	// (the serving layer's cache-miss path) skip the cold-start
	// allocations. When nil, Solve builds a private workspace — the
	// steady state *within* the solve is identical, only cross-solve reuse
	// is lost. Results are bit-identical with any workspace. Not safe for
	// concurrent use.
	Workspace *Workspace
	// StageHook, when non-nil, is invoked at every engine stage boundary
	// (before that stage's cancellation checkpoint) with the stage index
	// and name. It is an observability and test seam — the
	// cancel-at-every-boundary regression drives it; it must not mutate
	// solve state and must not be relied on for protocol logic.
	StageHook func(i int, name string)
	// Faults arms the pipeline's network(s) with a deterministic fault
	// schedule (see congest.FaultPlan). The zero value disables injection
	// and keeps rounds bit-identical to an unarmed solve. Recovered faults
	// (drop, duplication, delay) only surcharge rounds; unrecovered ones
	// (corruption, crash) fail a stage, which the engine retries within
	// the strategy's budget — on exhaustion the solve fails with an error
	// matching errors.As(*congest.FaultError), carrying the partial stage
	// telemetry like a cancellation does.
	Faults congest.FaultPlan
}

// Workspace aggregates the reusable state of a solve: the matrix freelist
// the squaring chain ping-pongs through, and the distance-product workspace
// (tripartite instance, binary-search buffers, triangles/qsearch scratch).
// A steady-state Solve through a warm Workspace performs near-zero heap
// allocation; the only storage that intentionally escapes is the returned
// distance matrix, which the workspace permanently forgets (so cached
// results never alias pooled buffers).
type Workspace struct {
	mx matrix.Workspace
	dp *distprod.Workspace
}

// NewWorkspace returns an empty Workspace; buffers grow to their high-water
// mark over the first solve.
func NewWorkspace() *Workspace {
	return &Workspace{dp: distprod.NewWorkspace()}
}

func (c Config) strategy() Strategy {
	if c.Strategy == 0 {
		return StrategyQuantum
	}
	return c.Strategy
}

// Result is the outcome of an APSP solve.
type Result struct {
	// Dist holds d(i,j) for all pairs; graph.Inf marks unreachable pairs.
	Dist *matrix.Matrix
	// Rounds is the total CONGEST-CLIQUE rounds charged across the whole
	// pipeline.
	Rounds int64
	// Metrics is the aggregate network accounting.
	Metrics congest.Metrics
	// Transport is the delivery-backend accounting of the pipeline's main
	// network: which backend ran, its shard count, and the delivery/message
	// counters (shard-traffic split included for the sharded backend).
	Transport congest.TransportStats
	// Products is the number of distance products (Proposition 3:
	// ⌈log₂ n⌉).
	Products int
	// FindEdgesCalls is the total number of FindEdges invocations across
	// all products (Proposition 2: O(log M) each).
	FindEdgesCalls int
	// Strategy records which pipeline ran.
	Strategy Strategy
	// W is the input weight bound observed.
	W int64
	// Epsilon echoes Config.Epsilon (0 for exact strategies).
	Epsilon float64
	// GuaranteedStretch is the multiplicative stretch bound the strategy
	// guarantees: 1 for the exact pipelines, 1+ε for StrategyApproxQuantum,
	// 2+ε for StrategyApproxSkeleton.
	GuaranteedStretch float64
	// ObservedStretch is the measured maximum ratio of the returned
	// distances over the centralized exact reference (1 for exact
	// strategies, where the pipelines are validated elsewhere). Approximate
	// solves always pay the O(n³) central reference run; it is the
	// simulation's accuracy instrument, not a serving-path cost.
	ObservedStretch float64
	// Stages is the engine's per-stage breakdown of the pipeline, in
	// execution order. The per-stage Rounds sum exactly to Rounds; wall
	// time and allocation columns are host-side measurements. On a
	// cancelled solve the partial breakdown (work done before the stop) is
	// returned alongside the context error.
	Stages []engine.StageStat
}

// Solve computes exact APSP distances for g. Graphs containing a negative
// cycle yield ErrNegativeCycle (distances are undefined), detected from a
// negative diagonal after the squaring chain, exactly as the matrix
// formulation prescribes.
func Solve(g *graph.Digraph, cfg Config) (*Result, error) {
	return SolveContext(context.Background(), g, cfg)
}

// SolveContext is Solve under a context: the engine checkpoints between
// pipeline stages, and the distprod/triangles layers checkpoint inside the
// squaring-chain and triangle-enumeration loops, so a cancelled or
// deadline-expired context stops the solve at the next boundary. On
// cancellation the returned error wraps the context error, and the
// returned Result — nil Dist — carries the partial per-stage telemetry
// (stages completed, rounds charged) of the work done before the stop; the
// workspace (Config.Workspace or the caller's pool) is left in a reusable
// state.
func SolveContext(ctx context.Context, g *graph.Digraph, cfg Config) (*Result, error) {
	if g == nil {
		return nil, errors.New("core: nil graph")
	}
	strat, registered := cfg.strategy().Pipeline()
	if !registered {
		return nil, fmt.Errorf("core: unknown strategy %v", cfg.Strategy)
	}
	if strat.Approximate() {
		if !approx.ValidEpsilon(cfg.Epsilon) {
			return nil, fmt.Errorf("core: strategy %v: %w (got %v)", cfg.strategy(), approx.ErrBadEpsilon, cfg.Epsilon)
		}
	} else if cfg.Epsilon != 0 {
		return nil, fmt.Errorf("core: Epsilon is only valid for approximate strategies (got %v with %v)", cfg.Epsilon, cfg.strategy())
	}
	n := g.N()
	res := &Result{
		Strategy:          cfg.strategy(),
		W:                 g.MaxAbsWeight(),
		Epsilon:           cfg.Epsilon,
		GuaranteedStretch: strat.Guarantee(cfg.Epsilon),
		ObservedStretch:   1,
	}
	if n == 0 {
		res.Dist = matrix.New(0)
		return res, nil
	}
	ws := cfg.Workspace
	if ws == nil {
		ws = NewWorkspace()
	}
	out, err := engine.Run(ctx, strat, &engine.Request{
		G:         g,
		Params:    cfg.Params,
		Seed:      cfg.Seed,
		Workers:   cfg.Workers,
		Transport: cfg.Transport,
		Epsilon:   cfg.Epsilon,
		MX:        &ws.mx,
		DP:        ws.dp,
		StageHook: cfg.StageHook,
		Faults:    cfg.Faults,
	})
	if err != nil {
		var fe *congest.FaultError
		if out != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || errors.As(err, &fe)) {
			// Cancelled mid-pipeline, or an injected fault exhausted the
			// stage retry budget: surface the partial stage telemetry (no
			// distances) so the serving layer can report what ran — and,
			// for faults, how many were injected before the stop.
			res.Rounds = out.Rounds
			res.Metrics = out.Metrics
			res.Transport = out.Transport
			res.Products = out.Products
			res.Stages = out.Stages
			return res, err
		}
		return nil, err
	}
	res.Dist = out.Dist
	res.Products = out.Products
	res.FindEdgesCalls = out.FindEdgesCalls
	res.Rounds = out.Rounds
	res.Metrics = out.Metrics
	res.Transport = out.Transport
	res.Stages = out.Stages
	if strat.Approximate() {
		res.ObservedStretch = out.ObservedStretch
	}

	if res.Dist.HasNegativeDiagonal() {
		return res, ErrNegativeCycle
	}
	return res, nil
}
