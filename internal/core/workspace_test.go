package core

import (
	"testing"

	"qclique/internal/graph"
	"qclique/internal/triangles"
	"qclique/internal/xrand"
)

func workspaceTestGraph(t *testing.T, n int, seed uint64) *graph.Digraph {
	t.Helper()
	g, err := graph.RandomDigraph(n, graph.DigraphOpts{
		ArcProb: 0.4, MinWeight: -8, MaxWeight: 8, NoNegativeCycles: true,
	}, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestWorkspaceDeterminism is the pooled-vs-fresh contract: one Workspace
// reused across solves must produce byte-identical distance matrices and
// identical round counts to fresh per-call state, across seeds and
// strategies. The workspace is deliberately shared across all seeds and
// strategies in sequence so that stale high-water buffers from one run feed
// the next.
func TestWorkspaceDeterminism(t *testing.T) {
	params := triangles.BenchParams()
	g := workspaceTestGraph(t, 14, 3)
	ws := NewWorkspace()
	for _, strat := range []Strategy{StrategyQuantum, StrategyClassicalSearch, StrategyGossip} {
		for seed := uint64(0); seed <= 2; seed++ {
			fresh, err := Solve(g, Config{Strategy: strat, Params: &params, Seed: seed})
			if err != nil {
				t.Fatalf("%v seed %d fresh: %v", strat, seed, err)
			}
			pooled, err := Solve(g, Config{Strategy: strat, Params: &params, Seed: seed, Workspace: ws})
			if err != nil {
				t.Fatalf("%v seed %d pooled: %v", strat, seed, err)
			}
			if !fresh.Dist.Equal(pooled.Dist) {
				t.Errorf("%v seed %d: pooled distance matrix differs from fresh", strat, seed)
			}
			if fresh.Rounds != pooled.Rounds {
				t.Errorf("%v seed %d: pooled rounds %d != fresh %d", strat, seed, pooled.Rounds, fresh.Rounds)
			}
			if fresh.Metrics.Words != pooled.Metrics.Words {
				t.Errorf("%v seed %d: pooled words %d != fresh %d", strat, seed, pooled.Metrics.Words, fresh.Metrics.Words)
			}
			if fresh.FindEdgesCalls != pooled.FindEdgesCalls {
				t.Errorf("%v seed %d: pooled FindEdges calls %d != fresh %d", strat, seed, pooled.FindEdgesCalls, fresh.FindEdgesCalls)
			}
		}
	}
}

// TestWorkspaceResultNotRecycled guards the escape contract: the distance
// matrix returned by a workspace-backed solve must stay intact when the
// same workspace runs further solves (a cached result aliasing pooled
// storage would silently corrupt).
func TestWorkspaceResultNotRecycled(t *testing.T) {
	params := triangles.BenchParams()
	ws := NewWorkspace()
	g1 := workspaceTestGraph(t, 12, 4)
	first, err := Solve(g1, Config{Params: &params, Seed: 1, Workspace: ws})
	if err != nil {
		t.Fatal(err)
	}
	snapshot := first.Dist.Clone()
	// Hammer the workspace with more solves, including a different size
	// (forces fresh internal state) and the same size (would reuse a
	// recycled matrix if the result had been put back).
	for _, n := range []int{12, 9, 12} {
		g := workspaceTestGraph(t, n, uint64(10+n))
		if _, err := Solve(g, Config{Params: &params, Seed: 2, Workspace: ws}); err != nil {
			t.Fatal(err)
		}
	}
	if !first.Dist.Equal(snapshot) {
		t.Fatal("distance matrix of an earlier workspace solve was mutated by later solves")
	}
}

// TestWorkspaceAcrossSizes exercises the workspace's shape transitions:
// growing and shrinking n must neither fail nor change results.
func TestWorkspaceAcrossSizes(t *testing.T) {
	params := triangles.BenchParams()
	ws := NewWorkspace()
	for _, n := range []int{6, 13, 8, 13, 6} {
		g := workspaceTestGraph(t, n, uint64(n))
		fresh, err := Solve(g, Config{Params: &params, Seed: 0})
		if err != nil {
			t.Fatal(err)
		}
		pooled, err := Solve(g, Config{Params: &params, Seed: 0, Workspace: ws})
		if err != nil {
			t.Fatal(err)
		}
		if !fresh.Dist.Equal(pooled.Dist) || fresh.Rounds != pooled.Rounds {
			t.Fatalf("n=%d: workspace solve diverged from fresh", n)
		}
	}
}
