package core

import (
	"errors"
	"testing"

	"qclique/internal/graph"
	"qclique/internal/matrix"
	"qclique/internal/xrand"
)

func solveGossip(t *testing.T, g *graph.Digraph) *Result {
	t.Helper()
	res, err := Solve(g, Config{Strategy: StrategyGossip})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestReconstructPathValidatesWeights(t *testing.T) {
	rng := xrand.New(1)
	for trial := 0; trial < 20; trial++ {
		g, err := graph.RandomDigraph(14, graph.DigraphOpts{
			ArcProb: 0.35, MinWeight: -5, MaxWeight: 12, NoNegativeCycles: true,
		}, rng.SplitN("t", trial))
		if err != nil {
			t.Fatal(err)
		}
		res := solveGossip(t, g)
		for src := 0; src < g.N(); src++ {
			for dst := 0; dst < g.N(); dst++ {
				d := res.Dist.At(src, dst)
				path, err := ReconstructPath(g, res.Dist, src, dst)
				if d >= graph.Inf {
					if !errors.Is(err, ErrNoPath) {
						t.Fatalf("unreachable (%d,%d): err = %v, want ErrNoPath", src, dst, err)
					}
					continue
				}
				if err != nil {
					t.Fatalf("(%d,%d): %v", src, dst, err)
				}
				if path[0] != src || path[len(path)-1] != dst {
					t.Fatalf("path endpoints wrong: %v", path)
				}
				w, err := PathWeight(g, path)
				if err != nil {
					t.Fatal(err)
				}
				if w != d {
					t.Fatalf("(%d,%d): path weight %d, distance %d (path %v)", src, dst, w, d, path)
				}
			}
		}
	}
}

func TestReconstructPathTrivial(t *testing.T) {
	g := graph.NewDigraph(3)
	if err := g.SetArc(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	res := solveGossip(t, g)
	path, err := ReconstructPath(g, res.Dist, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 1 || path[0] != 0 {
		t.Errorf("self path = %v", path)
	}
}

func TestReconstructPathZeroWeightCycle(t *testing.T) {
	// Zero-weight 2-cycle between 1 and 2 must not trap the
	// reconstruction.
	g := graph.NewDigraph(4)
	for _, a := range [][3]int64{{0, 1, 1}, {1, 2, 0}, {2, 1, 0}, {2, 3, 1}} {
		if err := g.SetArc(int(a[0]), int(a[1]), a[2]); err != nil {
			t.Fatal(err)
		}
	}
	res := solveGossip(t, g)
	path, err := ReconstructPath(g, res.Dist, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	w, err := PathWeight(g, path)
	if err != nil {
		t.Fatal(err)
	}
	if w != res.Dist.At(0, 3) {
		t.Errorf("path weight %d, want %d", w, res.Dist.At(0, 3))
	}
}

func TestReconstructPathErrors(t *testing.T) {
	g := graph.NewDigraph(3)
	res := solveGossip(t, g)
	if _, err := ReconstructPath(g, res.Dist, 0, 5); err == nil {
		t.Error("out-of-range endpoint must fail")
	}
	if _, err := ReconstructPath(g, matrix.New(5), 0, 1); err == nil {
		t.Error("dimension mismatch must fail")
	}
	// Inconsistent distances: claim d(0,1)=1 with no arcs at all.
	bogus := matrix.Identity(3)
	bogus.Set(0, 1, 1)
	if _, err := ReconstructPath(g, bogus, 0, 1); err == nil {
		t.Error("inconsistent matrix must fail")
	}
}

func TestPathWeightErrors(t *testing.T) {
	g := graph.NewDigraph(3)
	if err := g.SetArc(0, 1, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := PathWeight(g, nil); err == nil {
		t.Error("empty path must fail")
	}
	if _, err := PathWeight(g, []int{0, 2}); err == nil {
		t.Error("broken path must fail")
	}
	w, err := PathWeight(g, []int{0, 1})
	if err != nil || w != 4 {
		t.Errorf("weight = %d, %v", w, err)
	}
	if w, _ := PathWeight(g, []int{1}); w != 0 {
		t.Error("single-vertex path weighs 0")
	}
}

func TestSolveSSSP(t *testing.T) {
	rng := xrand.New(5)
	g, err := graph.RandomDigraph(12, graph.DigraphOpts{
		ArcProb: 0.4, MinWeight: -4, MaxWeight: 10, NoNegativeCycles: true,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []int{0, 7} {
		dist, res, err := SolveSSSP(g, src, Config{Strategy: StrategyDolev, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		want, err := graph.BellmanFord(g, src)
		if err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if dist[v] != want[v] {
				t.Fatalf("src=%d: d(%d) = %d, want %d", src, v, dist[v], want[v])
			}
		}
		if res == nil || res.Rounds <= 0 {
			t.Error("SSSP must report the pipeline result")
		}
	}
	if _, _, err := SolveSSSP(g, -1, Config{}); err == nil {
		t.Error("bad source must fail")
	}
	if _, _, err := SolveSSSP(nil, 0, Config{}); err == nil {
		t.Error("nil graph must fail")
	}
}
