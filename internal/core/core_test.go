package core

import (
	"errors"
	"testing"

	"qclique/internal/graph"
	"qclique/internal/triangles"
	"qclique/internal/xrand"
)

func randomAPSPInput(t *testing.T, n int, seed uint64) *graph.Digraph {
	t.Helper()
	rng := xrand.New(seed)
	g, err := graph.RandomDigraph(n, graph.DigraphOpts{
		ArcProb: 0.4, MinWeight: -6, MaxWeight: 14, NoNegativeCycles: true,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func checkDistances(t *testing.T, g *graph.Digraph, res *Result, label string) {
	t.Helper()
	want, err := graph.FloydWarshall(g)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if res.Dist.At(i, j) != want[i*n+j] {
				t.Fatalf("%s: d(%d,%d) = %d, want %d", label, i, j, res.Dist.At(i, j), want[i*n+j])
			}
		}
	}
}

func TestSolveAllStrategiesExact(t *testing.T) {
	g := randomAPSPInput(t, 16, 1)
	for _, s := range []Strategy{StrategyGossip, StrategyDolev, StrategyClassicalSearch, StrategyQuantum} {
		res, err := Solve(g, Config{Strategy: s, Seed: 7})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		checkDistances(t, g, res, s.String())
		if res.Strategy != s {
			t.Errorf("strategy echo = %v", res.Strategy)
		}
		if res.Rounds <= 0 {
			t.Errorf("%v: no rounds charged", s)
		}
	}
}

func TestSolveMultipleSeedsAndSizes(t *testing.T) {
	for _, n := range []int{8, 12, 20} {
		for seed := uint64(0); seed < 2; seed++ {
			g := randomAPSPInput(t, n, 100*uint64(n)+seed)
			res, err := Solve(g, Config{Strategy: StrategyQuantum, Seed: seed})
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			checkDistances(t, g, res, "quantum")
		}
	}
}

func TestSolvePropositionCounts(t *testing.T) {
	// Proposition 3: ⌈log₂ n⌉ products; Proposition 2: each product makes
	// O(log M) FindEdges calls.
	g := randomAPSPInput(t, 16, 3)
	res, err := Solve(g, Config{Strategy: StrategyDolev, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Products != 4 { // ceil(log2(16))
		t.Errorf("products = %d, want 4", res.Products)
	}
	if res.FindEdgesCalls < res.Products {
		t.Errorf("FindEdges calls = %d, below product count", res.FindEdgesCalls)
	}
	// logM per product with M ≤ 2·n·W: generous upper bound on calls.
	maxPerProduct := 2 + 64 // log2 of int64 range cap
	if res.FindEdgesCalls > res.Products*maxPerProduct {
		t.Errorf("FindEdges calls = %d, implausibly many", res.FindEdgesCalls)
	}
}

func TestSolveNegativeCycle(t *testing.T) {
	g := graph.NewDigraph(5)
	for _, a := range [][3]int64{{0, 1, 2}, {1, 2, -7}, {2, 0, 1}, {3, 4, 1}} {
		if err := g.SetArc(int(a[0]), int(a[1]), a[2]); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range []Strategy{StrategyGossip, StrategyDolev} {
		res, err := Solve(g, Config{Strategy: s, Seed: 2})
		if !errors.Is(err, ErrNegativeCycle) {
			t.Errorf("%v: err = %v, want ErrNegativeCycle", s, err)
		}
		if res == nil || !res.Dist.HasNegativeDiagonal() {
			t.Errorf("%v: result must carry the negative diagonal", s)
		}
	}
}

func TestSolveTrivialInputs(t *testing.T) {
	if _, err := Solve(nil, Config{}); err == nil {
		t.Error("nil graph must fail")
	}
	res, err := Solve(graph.NewDigraph(0), Config{Strategy: StrategyGossip})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist.N() != 0 {
		t.Error("empty graph must give empty result")
	}
	res, err = Solve(graph.NewDigraph(1), Config{Strategy: StrategyGossip})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist.At(0, 0) != 0 {
		t.Error("singleton diagonal must be 0")
	}
}

func TestSolveDisconnected(t *testing.T) {
	g := graph.NewDigraph(6)
	if err := g.SetArc(0, 1, 4); err != nil {
		t.Fatal(err)
	}
	if err := g.SetArc(4, 5, -2); err != nil {
		t.Fatal(err)
	}
	res, err := Solve(g, Config{Strategy: StrategyDolev, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkDistances(t, g, res, "disconnected")
	if res.Dist.At(0, 5) != graph.Inf {
		t.Error("cross-component distance must be Inf")
	}
	if res.Dist.At(4, 5) != -2 {
		t.Error("negative arc distance wrong")
	}
}

func TestSolveWeightBoundEcho(t *testing.T) {
	g := graph.NewDigraph(4)
	if err := g.SetArc(0, 1, -9); err != nil {
		t.Fatal(err)
	}
	res, err := Solve(g, Config{Strategy: StrategyGossip})
	if err != nil {
		t.Fatal(err)
	}
	if res.W != 9 {
		t.Errorf("W = %d, want 9", res.W)
	}
}

func TestSolveScaledParams(t *testing.T) {
	g := randomAPSPInput(t, 16, 9)
	p := triangles.BenchParams()
	res, err := Solve(g, Config{Strategy: StrategyQuantum, Params: &p, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkDistances(t, g, res, "scaled")
}

func TestSolveUnknownStrategy(t *testing.T) {
	if _, err := Solve(graph.NewDigraph(2), Config{Strategy: Strategy(99)}); err == nil {
		t.Error("unknown strategy must fail")
	}
}

func TestStrategyStrings(t *testing.T) {
	for s, want := range map[Strategy]string{
		StrategyQuantum:         "quantum",
		StrategyClassicalSearch: "classical-search",
		StrategyDolev:           "dolev",
		StrategyGossip:          "gossip",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

func TestGossipRoundsAreLinear(t *testing.T) {
	for _, n := range []int{8, 32, 64} {
		g := randomAPSPInput(t, n, uint64(n))
		res, err := Solve(g, Config{Strategy: StrategyGossip})
		if err != nil {
			t.Fatal(err)
		}
		if res.Rounds != int64(n) {
			t.Errorf("n=%d: gossip rounds = %d, want n", n, res.Rounds)
		}
	}
}
