package core

import (
	"errors"
	"sync"
	"testing"

	"qclique/internal/graph"
	"qclique/internal/matrix"
	"qclique/internal/xrand"
)

func oracleFixture(t *testing.T, n int, seed uint64) (*graph.Digraph, *Result) {
	t.Helper()
	g, err := graph.RandomDigraph(n, graph.DigraphOpts{
		ArcProb: 0.3, MinWeight: -5, MaxWeight: 9, NoNegativeCycles: true,
	}, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(g, Config{Strategy: StrategyGossip})
	if err != nil {
		t.Fatal(err)
	}
	return g, res
}

// TestPathOracleMatchesReconstructPath checks that for every pair the
// oracle returns a valid shortest path (weight equal to the distance) and
// agrees with ReconstructPath on reachability.
func TestPathOracleMatchesReconstructPath(t *testing.T) {
	g, res := oracleFixture(t, 14, 33)
	o, err := NewPathOracle(g, res.Dist)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			path, err := o.Path(src, dst)
			if res.Dist.At(src, dst) >= graph.Inf {
				if !errors.Is(err, ErrNoPath) {
					t.Fatalf("(%d,%d): err = %v, want ErrNoPath", src, dst, err)
				}
				if _, rerr := ReconstructPath(g, res.Dist, src, dst); !errors.Is(rerr, ErrNoPath) {
					t.Fatalf("(%d,%d): ReconstructPath disagrees on reachability", src, dst)
				}
				continue
			}
			if err != nil {
				t.Fatalf("(%d,%d): %v", src, dst, err)
			}
			if path[0] != src || path[len(path)-1] != dst {
				t.Fatalf("(%d,%d): path endpoints %v", src, dst, path)
			}
			w, err := PathWeight(g, path)
			if err != nil {
				t.Fatalf("(%d,%d): broken path %v: %v", src, dst, path, err)
			}
			if w != res.Dist.At(src, dst) {
				t.Fatalf("(%d,%d): path weight %d, distance %d", src, dst, w, res.Dist.At(src, dst))
			}
		}
	}
}

// TestPathOracleConcurrent exercises lazy successor construction under
// concurrent queries; the race detector is the real assertion here.
func TestPathOracleConcurrent(t *testing.T) {
	g, res := oracleFixture(t, 12, 7)
	o, err := NewPathOracle(g, res.Dist)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for src := 0; src < n; src++ {
				for dst := 0; dst < n; dst++ {
					path, err := o.Path(src, dst)
					if errors.Is(err, ErrNoPath) {
						continue
					}
					if err != nil {
						t.Errorf("worker %d (%d,%d): %v", w, src, dst, err)
						return
					}
					if path[0] != src || path[len(path)-1] != dst {
						t.Errorf("worker %d (%d,%d): bad endpoints %v", w, src, dst, path)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestPathOracleValidation(t *testing.T) {
	g, res := oracleFixture(t, 6, 1)
	if _, err := NewPathOracle(nil, res.Dist); err == nil {
		t.Error("nil graph must fail")
	}
	if _, err := NewPathOracle(g, nil); err == nil {
		t.Error("nil matrix must fail")
	}
	if _, err := NewPathOracle(g, matrix.New(4)); err == nil {
		t.Error("dimension mismatch must fail")
	}
	o, err := NewPathOracle(g, res.Dist)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Path(-1, 0); err == nil {
		t.Error("out-of-range src must fail")
	}
	if _, err := o.Path(0, 99); err == nil {
		t.Error("out-of-range dst must fail")
	}
	if _, err := o.Dist(0, 99); err == nil {
		t.Error("out-of-range Dist must fail")
	}
	p, err := o.Path(3, 3)
	if err != nil || len(p) != 1 || p[0] != 3 {
		t.Errorf("self path = %v, %v", p, err)
	}
}
