// Package qsearch implements the distributed quantum search framework of
// Le Gall and Magniez (PODC 2018) as used by the paper (Section 4): a node
// searches a space X through an r-round distributed evaluation procedure in
// Õ(r·√|X|) rounds, and m searches run in parallel through a single shared
// evaluation procedure — including the truncated procedure C̃m of Theorem 3
// that is only correct on load-balanced ("typical") inputs.
//
// # Simulation contract
//
// The real protocol transports superposed queries through a fixed,
// input-independent communication schedule (that input independence is
// exactly what Section 4.2 buys). The simulation therefore (1) executes
// the evaluation schedule once through the CONGEST-CLIQUE simulator,
// measuring its true round cost r and obtaining the oracle truth tables,
// (2) evolves exact per-instance Grover state vectors locally, and
// (3) charges r rounds for every further oracle invocation by replaying
// the measured cost. Truncation error — the amplitude mass the truncated
// procedure corrupts, bounded by Lemma 5 — is computed analytically and
// injected as a sampled failure, reproducing the Theorem 3 error model.
package qsearch

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"sync"
	"unsafe"

	"qclique/internal/congest"
	"qclique/internal/par"
	"qclique/internal/quantum"
	"qclique/internal/xrand"
)

// ErrTruncation reports an injected Theorem-3 truncation failure: the
// atypical amplitude mass corrupted the run. Callers retry, exactly as the
// paper's union-bound analysis assumes.
var ErrTruncation = errors.New("qsearch: truncation failure (atypical amplitude mass)")

// EvalFunc executes the evaluation procedure's fixed communication
// schedule once through the network and returns the oracle truth tables:
// tables[i][x] answers g_i(x) for instance i over search-space element x.
// Implementations must charge all communication to net, must have an
// input-independent schedule, and must return an error if a load promise
// is violated (the C̃m abort).
type EvalFunc func(net *congest.Network) ([][]bool, error)

// Spec describes one multi-search invocation.
type Spec struct {
	// SpaceSize is |X|.
	SpaceSize int
	// Instances is m, the number of parallel searches.
	Instances int
	// Eval is the shared evaluation procedure.
	Eval EvalFunc
	// Beta is the typicality bound β of Theorem 3 (queries per element of
	// X per evaluation). Zero means "untruncated evaluation" (Section 4.1
	// semantics): no truncation error is modeled.
	Beta float64
	// Passes overrides the number of amplification passes; 0 selects the
	// default O(log m) schedule.
	Passes int
	// DisableFailureInjection turns off sampling of the truncation error
	// (the bound is still reported). Used by deterministic tests.
	DisableFailureInjection bool
	// Workers bounds the host-side parallelism of the per-instance Grover
	// state-vector updates; <= 0 selects GOMAXPROCS. Every probe draws from
	// its own pre-derived random stream, so results are identical for every
	// worker count.
	Workers int
	// Scratch optionally supplies reusable search state (per-worker probe
	// streams, probe merge slots, and the Result's Found/Witness
	// backing). When set, the returned Result aliases the scratch and is
	// valid only until the scratch's next MultiSearch; when nil, internal
	// buffers still come from a package pool but Found/Witness are freshly
	// allocated. Results are bit-identical either way.
	Scratch *Scratch
}

// Scratch is the reusable state of a MultiSearch invocation. A Scratch is
// not safe for concurrent use; the protocol layers keep one per solve.
// Every buffer is fully (re)initialized before it is read, which is what
// keeps pooled and fresh runs bit-identical.
type Scratch struct {
	found    []bool
	witness  []int
	feasible []int32
	active   []int32
	probeX   []int32
	probeHit []bool
	rngs     []*xrand.Source
}

// scratchPool recycles the internal-only buffers for callers that do not
// thread their own Scratch (Found/Witness still escape to the Result, so
// those stay freshly allocated on this path).
var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// workerState returns one reseedable scratch source per worker (the probes'
// only per-worker state since the two-amplitude Grover probe dropped the
// state-vector buffers), growing the retained slice as needed.
func (s *Scratch) workerState(workers int) []*xrand.Source {
	if cap(s.rngs) < workers {
		s.rngs = append(s.rngs[:cap(s.rngs)], make([]*xrand.Source, workers-cap(s.rngs))...)
	}
	s.rngs = s.rngs[:workers]
	for w := range s.rngs {
		if s.rngs[w] == nil {
			s.rngs[w] = xrand.New(0)
		}
	}
	return s.rngs
}

// Result reports the outcome of a (multi-)search.
type Result struct {
	// Found[i] reports whether instance i located a witness.
	Found []bool
	// Witness[i] is the located element for instance i (valid when
	// Found[i]).
	Witness []int
	// EvalRounds is the measured round cost of one evaluation invocation.
	EvalRounds int64
	// EvalCalls counts oracle invocations (Grover iterations plus
	// verifications) charged at EvalRounds each.
	EvalCalls int64
	// Iterations is the total number of Grover iterations in the
	// lock-step schedule.
	Iterations int64
	// Passes is the number of amplification passes executed.
	Passes int
	// TruncationErrorBound is the Lemma-5/Theorem-3 bound on the
	// probability that truncation corrupted the run (0 when Beta == 0).
	TruncationErrorBound float64
	// PreconditionsHold reports whether the Theorem 3 hypotheses
	// (|X| < m/(36 log m), β > 8m/|X|) held for this invocation.
	PreconditionsHold bool
}

// AllFound reports whether every instance found a witness.
func (r *Result) AllFound() bool {
	for _, f := range r.Found {
		if !f {
			return false
		}
	}
	return true
}

// FoundCount returns the number of successful instances.
func (r *Result) FoundCount() int {
	c := 0
	for _, f := range r.Found {
		if f {
			c++
		}
	}
	return c
}

// defaultPasses is the O(log m) amplification count driving per-instance
// failure below 1/m² (Appendix A: "amplified ... by repeating the
// algorithm a logarithmic number of times").
func defaultPasses(m int) int {
	if m < 2 {
		return 3
	}
	return 3 + 2*int(math.Ceil(math.Log2(float64(m))))
}

// MultiSearch runs spec.Instances parallel Grover searches over a space of
// spec.SpaceSize elements, sharing the evaluation procedure in lock-step:
// within a pass, every instance executes the same number of Grover
// iterations (the joint circuit applies Um·Cm to all registers at once),
// so the oracle-call count per pass is the maximum of the BBHT schedule,
// not the sum.
func MultiSearch(net *congest.Network, spec Spec, rng *xrand.Source) (*Result, error) {
	if spec.SpaceSize <= 0 {
		return nil, fmt.Errorf("qsearch: space size %d", spec.SpaceSize)
	}
	if spec.Instances <= 0 {
		return nil, fmt.Errorf("qsearch: instance count %d", spec.Instances)
	}
	if spec.Eval == nil {
		return nil, errors.New("qsearch: nil evaluation procedure")
	}

	// Execute the fixed schedule once: measures its cost and yields the
	// truth tables for the local state-vector evolution.
	baseline := net.Snapshot()
	tables, err := spec.Eval(net)
	if err != nil {
		return nil, fmt.Errorf("qsearch: evaluation procedure: %w", err)
	}
	evalCost := net.DeltaSince(baseline)
	if len(tables) != spec.Instances {
		return nil, fmt.Errorf("qsearch: evaluation returned %d tables, want %d", len(tables), spec.Instances)
	}
	for i, tab := range tables {
		if len(tab) != spec.SpaceSize {
			return nil, fmt.Errorf("qsearch: table %d has %d entries, want %d", i, len(tab), spec.SpaceSize)
		}
	}

	// Buffer provenance: a caller-supplied Scratch backs everything
	// including the Result's Found/Witness; otherwise the internal-only
	// buffers come from the package pool and Found/Witness are fresh
	// (they escape to the caller).
	sc := spec.Scratch
	var found []bool
	var witness []int
	if sc == nil {
		sc = scratchPool.Get().(*Scratch)
		defer scratchPool.Put(sc)
		found = make([]bool, spec.Instances)
		witness = make([]int, spec.Instances)
	} else {
		sc.found = par.Grow(sc.found, spec.Instances)
		clear(sc.found)
		found = sc.found
		sc.witness = sc.witness[:0]
		if cap(sc.witness) < spec.Instances {
			sc.witness = make([]int, spec.Instances)
		}
		witness = sc.witness[:spec.Instances]
		sc.witness = witness
	}

	res := &Result{
		Found:      found,
		Witness:    witness,
		EvalRounds: evalCost.Rounds,
	}
	for i := range res.Witness {
		res.Witness[i] = -1
	}
	res.EvalCalls = 1 // the staging invocation above

	passes := spec.Passes
	if passes <= 0 {
		passes = defaultPasses(spec.Instances)
	}
	sqrtX := math.Sqrt(float64(spec.SpaceSize))
	maxRounds := 4 + 3*int(math.Ceil(math.Log2(float64(spec.SpaceSize+1))))
	const lambda = 6.0 / 5.0

	// Instances with an all-false truth table can never verify a measured
	// candidate, so their probes are skipped — an exact equivalence, not an
	// approximation: the lock-step schedule's cost does not depend on the
	// instance count, and a probe of an empty oracle cannot change Found.
	// Feasible instances are kept as a compact index list so the per-round
	// scheduling work scales with the (typically small) feasible count,
	// not the instance count.
	// The feasibility test is "does the table contain a true". Scanning
	// bool-by-bool dominated large all-false tables, so the scan reuses
	// the vectorized bytes.IndexByte over the same memory: Go bools are
	// one byte storing exactly 0 or 1, so IndexByte(…, 1) finds the first
	// true. (Memoizing per shared row was tried and measured slower: the
	// aliasing instances are rarely adjacent.)
	feasibleIdx := sc.feasible[:0]
	for i, tab := range tables {
		if len(tab) == 0 {
			continue
		}
		bs := unsafe.Slice((*byte)(unsafe.Pointer(&tab[0])), len(tab))
		if bytes.IndexByte(bs, 1) >= 0 {
			feasibleIdx = append(feasibleIdx, int32(i))
		}
	}
	sc.feasible = feasibleIdx
	remaining := len(feasibleIdx)

	// Per-node state-vector evolution is embarrassingly parallel across
	// instances: each probe draws from a stream derived from (pass, round,
	// instance) alone, and hits are merged back by instance index, so the
	// outcome is identical for every worker count. More workers than
	// feasible instances would never be scheduled, so cap before sizing
	// the per-worker scratch (reseedable probe RNGs).
	workers := par.Workers(spec.Workers)
	if workers > len(feasibleIdx) {
		workers = len(feasibleIdx)
	}
	if workers < 1 {
		workers = 1
	}
	if cap(sc.active) < len(feasibleIdx) {
		sc.active = make([]int32, 0, len(feasibleIdx))
	}
	// The not-yet-found feasible instances are kept as a compacted alive
	// list with swap-removal on success, instead of rebuilding the list
	// from Found each round: instances never resurrect, each probe draws
	// from a stream keyed by (pass, round, instance) alone, and hits are
	// merged by instance index, so neither the list order nor the removal
	// strategy can affect any outcome.
	alive := append(sc.active[:0], feasibleIdx...)
	sc.active = alive
	probeX := par.Grow(sc.probeX, spec.Instances)
	sc.probeX = probeX
	probeHit := par.Grow(sc.probeHit, spec.Instances)
	sc.probeHit = probeHit
	scratchRng := sc.workerState(workers)
	probeSplit := rng.SplitterFor("probe")

	for pass := 0; pass < passes; pass++ {
		res.Passes++
		mcur := 1.0
		for round := 0; round < maxRounds; round++ {
			j := rng.IntN(int(math.Ceil(mcur)) + 1)
			// j lock-step Grover iterations plus one verification query.
			res.Iterations += int64(j)
			res.EvalCalls += int64(j) + 1
			probeKey := pass*1_000_003 + round*1009
			par.ForEachWorker(workers, len(alive), func(w, k int) {
				i := int(alive[k])
				x, hit := quantum.FixedScheduleProbe(tables[i], j, probeSplit.Into(scratchRng[w], probeKey+i))
				probeX[i] = int32(x)
				probeHit[i] = hit
			})
			for k := 0; k < len(alive); {
				ia := alive[k]
				if probeHit[ia] {
					res.Found[ia] = true
					res.Witness[ia] = int(probeX[ia])
					remaining--
					alive[k] = alive[len(alive)-1]
					alive = alive[:len(alive)-1]
				} else {
					k++
				}
			}
			mcur = math.Min(lambda*mcur, sqrtX)
		}
		if remaining == 0 {
			// All satisfiable instances have verified witnesses. The nodes
			// detect this with a one-word convergecast per pass (charged),
			// and stop early.
			break
		}
	}
	if err := net.BroadcastAll("qsearch/converge", int64(res.Passes)); err != nil {
		return nil, err
	}

	// Charge every oracle call beyond the staged one by replaying the
	// measured schedule cost.
	net.ReplayCharge("qsearch/oracle", evalCost, res.EvalCalls-1)

	// Theorem 3 truncation accounting.
	if spec.Beta > 0 {
		res.PreconditionsHold = quantum.Theorem3Preconditions(spec.Instances, spec.SpaceSize, spec.Beta)
		dev := quantum.TruncationDeviationBound(res.Iterations, spec.Instances, spec.SpaceSize)
		if dev > 1 {
			dev = 1
		}
		res.TruncationErrorBound = dev
		if !spec.DisableFailureInjection && rng.Split("trunc").Bool(dev) {
			return res, ErrTruncation
		}
	}
	return res, nil
}

// Search runs a single distributed quantum search (the Section 4.1
// framework with m = 1): find any x with g(x) = 1 through the given
// evaluation procedure.
func Search(net *congest.Network, spaceSize int, eval EvalFunc, rng *xrand.Source) (*Result, error) {
	return MultiSearch(net, Spec{SpaceSize: spaceSize, Instances: 1, Eval: eval}, rng)
}

// LocalEval adapts locally known truth tables into an EvalFunc that charges
// a fixed number of broadcast rounds; useful for tests and for protocols
// whose evaluation data is already in place.
func LocalEval(tables [][]bool, rounds int64) EvalFunc {
	return func(net *congest.Network) ([][]bool, error) {
		if rounds > 0 {
			if err := net.BroadcastAll("qsearch/local-eval", rounds); err != nil {
				return nil, err
			}
		}
		out := make([][]bool, len(tables))
		for i, t := range tables {
			row := make([]bool, len(t))
			copy(row, t)
			out[i] = row
		}
		return out, nil
	}
}
