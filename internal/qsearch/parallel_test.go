package qsearch

import (
	"testing"

	"qclique/internal/xrand"
)

// TestMultiSearchWorkersDeterministic asserts that the parallel probe pool
// reproduces the serial search exactly: same witnesses, same iteration and
// oracle-call counts, same charged rounds.
func TestMultiSearchWorkersDeterministic(t *testing.T) {
	const m = 200
	const size = 16
	rng := xrand.New(5)
	tables := make([][]bool, m)
	for i := range tables {
		tables[i] = make([]bool, size)
		if i%3 != 0 { // leave some instances witness-free
			tables[i][rng.IntN(size)] = true
		}
	}
	run := func(workers int) (*Result, int64) {
		nw := newNet(t, 8)
		res, err := MultiSearch(nw, Spec{
			SpaceSize: size, Instances: m, Eval: LocalEval(tables, 1), Workers: workers,
		}, xrand.New(42))
		if err != nil {
			t.Fatal(err)
		}
		return res, nw.Rounds()
	}
	serial, serialRounds := run(1)
	for _, workers := range []int{2, 5, 16} {
		parallel, rounds := run(workers)
		if rounds != serialRounds {
			t.Fatalf("workers=%d: rounds %d != %d", workers, rounds, serialRounds)
		}
		if parallel.Iterations != serial.Iterations || parallel.EvalCalls != serial.EvalCalls || parallel.Passes != serial.Passes {
			t.Fatalf("workers=%d: schedule diverged: %+v vs %+v", workers, parallel, serial)
		}
		for i := range serial.Found {
			if parallel.Found[i] != serial.Found[i] || parallel.Witness[i] != serial.Witness[i] {
				t.Fatalf("workers=%d: instance %d diverged: (%v,%d) vs (%v,%d)",
					workers, i, parallel.Found[i], parallel.Witness[i], serial.Found[i], serial.Witness[i])
			}
		}
	}
}
