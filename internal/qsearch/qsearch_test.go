package qsearch

import (
	"errors"
	"math"
	"testing"

	"qclique/internal/congest"
	"qclique/internal/xrand"
)

func newNet(t *testing.T, n int) *congest.Network {
	t.Helper()
	nw, err := congest.NewNetwork(n)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestSearchFindsWitness(t *testing.T) {
	rng := xrand.New(1)
	for trial := 0; trial < 30; trial++ {
		r := rng.SplitN("t", trial)
		nw := newNet(t, 4)
		size := 4 + r.IntN(40)
		target := r.IntN(size)
		table := make([]bool, size)
		table[target] = true
		res, err := Search(nw, size, LocalEval([][]bool{table}, 1), r)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found[0] || res.Witness[0] != target {
			t.Fatalf("trial %d: %+v", trial, res)
		}
	}
}

func TestSearchNoWitness(t *testing.T) {
	rng := xrand.New(2)
	nw := newNet(t, 4)
	res, err := Search(nw, 16, LocalEval([][]bool{make([]bool, 16)}, 1), rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found[0] {
		t.Error("found witness in empty oracle")
	}
	if res.Witness[0] != -1 {
		t.Error("witness must be -1 when not found")
	}
}

func TestMultiSearchAllInstances(t *testing.T) {
	rng := xrand.New(3)
	nw := newNet(t, 4)
	const m, size = 20, 25
	tables := make([][]bool, m)
	targets := make([]int, m)
	for i := range tables {
		tables[i] = make([]bool, size)
		targets[i] = rng.IntN(size)
		tables[i][targets[i]] = true
	}
	res, err := MultiSearch(nw, Spec{SpaceSize: size, Instances: m, Eval: LocalEval(tables, 2)}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllFound() {
		t.Fatalf("only %d/%d found", res.FoundCount(), m)
	}
	for i, w := range res.Witness {
		if w != targets[i] {
			t.Errorf("instance %d: witness %d, want %d", i, w, targets[i])
		}
	}
}

func TestMultiSearchMixedEmptyAndNonempty(t *testing.T) {
	rng := xrand.New(4)
	nw := newNet(t, 4)
	const size = 16
	tables := [][]bool{
		make([]bool, size), // empty
		make([]bool, size),
		make([]bool, size), // empty
	}
	tables[1][7] = true
	res, err := MultiSearch(nw, Spec{SpaceSize: size, Instances: 3, Eval: LocalEval(tables, 1)}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found[0] || res.Found[2] {
		t.Error("empty instances must not report witnesses")
	}
	if !res.Found[1] || res.Witness[1] != 7 {
		t.Errorf("instance 1: %+v", res)
	}
	if res.FoundCount() != 1 {
		t.Errorf("FoundCount = %d", res.FoundCount())
	}
}

func TestRoundAccountingIsCallsTimesEvalCost(t *testing.T) {
	rng := xrand.New(5)
	nw := newNet(t, 4)
	const evalRounds = 3
	table := make([]bool, 16)
	table[5] = true
	res, err := Search(nw, 16, LocalEval([][]bool{table}, evalRounds), rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.EvalRounds != evalRounds {
		t.Fatalf("measured eval rounds = %d, want %d", res.EvalRounds, evalRounds)
	}
	// Total = oracle calls at the measured eval cost, plus the one-word
	// early-stop convergecast per pass.
	want := res.EvalCalls*evalRounds + int64(res.Passes)
	if nw.Rounds() != want {
		t.Errorf("network rounds = %d, want EvalCalls(%d)×EvalRounds(%d)+Passes(%d) = %d",
			nw.Rounds(), res.EvalCalls, evalRounds, res.Passes, want)
	}
}

func TestCostScalesLikeSqrtSpace(t *testing.T) {
	// Õ(r√|X|): compare eval-call counts for |X|=16 vs |X|=1024 single-
	// instance searches; ratio should be far below the linear 64x.
	rng := xrand.New(6)
	avgCalls := func(size int) float64 {
		var total int64
		const trials = 25
		for i := 0; i < trials; i++ {
			r := rng.SplitN("s", size*1000+i)
			nw := newNet(t, 4)
			table := make([]bool, size)
			table[r.IntN(size)] = true
			res, err := Search(nw, size, LocalEval([][]bool{table}, 1), r)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Found[0] {
				t.Fatalf("size %d: not found", size)
			}
			total += res.EvalCalls
		}
		return float64(total) / trials
	}
	small := avgCalls(16)
	big := avgCalls(1024)
	if ratio := big / small; ratio > 24 {
		t.Errorf("eval-call ratio %f (small=%f, big=%f) suggests super-√ scaling", ratio, small, big)
	}
}

func TestSpecValidation(t *testing.T) {
	rng := xrand.New(7)
	nw := newNet(t, 4)
	if _, err := MultiSearch(nw, Spec{SpaceSize: 0, Instances: 1, Eval: LocalEval(nil, 0)}, rng); err == nil {
		t.Error("zero space must fail")
	}
	if _, err := MultiSearch(nw, Spec{SpaceSize: 4, Instances: 0, Eval: LocalEval(nil, 0)}, rng); err == nil {
		t.Error("zero instances must fail")
	}
	if _, err := MultiSearch(nw, Spec{SpaceSize: 4, Instances: 1}, rng); err == nil {
		t.Error("nil eval must fail")
	}
	// Mismatched table shapes.
	bad := func(net *congest.Network) ([][]bool, error) { return [][]bool{make([]bool, 3)}, nil }
	if _, err := MultiSearch(nw, Spec{SpaceSize: 4, Instances: 1, Eval: bad}, rng); err == nil {
		t.Error("short table must fail")
	}
	badCount := func(net *congest.Network) ([][]bool, error) { return nil, nil }
	if _, err := MultiSearch(nw, Spec{SpaceSize: 4, Instances: 1, Eval: badCount}, rng); err == nil {
		t.Error("missing tables must fail")
	}
}

func TestEvalErrorPropagates(t *testing.T) {
	rng := xrand.New(8)
	nw := newNet(t, 4)
	wantErr := errors.New("overloaded")
	eval := func(net *congest.Network) ([][]bool, error) { return nil, wantErr }
	if _, err := MultiSearch(nw, Spec{SpaceSize: 4, Instances: 1, Eval: eval}, rng); !errors.Is(err, wantErr) {
		t.Errorf("err = %v, want wrapped %v", err, wantErr)
	}
}

func TestTruncationAccounting(t *testing.T) {
	rng := xrand.New(9)
	nw := newNet(t, 4)
	// Large m relative to |X| with β > 8m/|X| satisfies Theorem 3 and the
	// bound must be minuscule.
	const m, size = 4000, 8
	tables := make([][]bool, m)
	for i := range tables {
		tables[i] = make([]bool, size)
		tables[i][i%size] = true
	}
	beta := 8*float64(m)/float64(size) + 100
	res, err := MultiSearch(nw, Spec{
		SpaceSize: size,
		Instances: m,
		Eval:      LocalEval(tables, 1),
		Beta:      beta,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !res.PreconditionsHold {
		t.Error("Theorem 3 preconditions should hold")
	}
	if res.TruncationErrorBound > 1.0/float64(m*m) {
		t.Errorf("truncation bound %g exceeds 1/m² = %g", res.TruncationErrorBound, 1.0/float64(m*m))
	}
	if !res.AllFound() {
		t.Errorf("found %d/%d", res.FoundCount(), m)
	}
}

func TestTruncationFailureInjection(t *testing.T) {
	// A pathological regime (tiny m, large |X|) makes the deviation bound
	// saturate at 1, so injection must fire and surface ErrTruncation.
	rng := xrand.New(10)
	nw := newNet(t, 4)
	tables := [][]bool{make([]bool, 64), make([]bool, 64)}
	_, err := MultiSearch(nw, Spec{
		SpaceSize: 64,
		Instances: 2,
		Eval:      LocalEval(tables, 1),
		Beta:      1,
	}, rng)
	if !errors.Is(err, ErrTruncation) {
		t.Errorf("err = %v, want ErrTruncation", err)
	}
	// With injection disabled, the same spec succeeds and reports the bound.
	res, err := MultiSearch(nw, Spec{
		SpaceSize:               64,
		Instances:               2,
		Eval:                    LocalEval(tables, 1),
		Beta:                    1,
		DisableFailureInjection: true,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.TruncationErrorBound != 1 {
		t.Errorf("bound = %f, want saturated 1", res.TruncationErrorBound)
	}
	if res.PreconditionsHold {
		t.Error("preconditions must not hold in the pathological regime")
	}
}

func TestPassesOverride(t *testing.T) {
	rng := xrand.New(11)
	nw := newNet(t, 4)
	table := make([]bool, 9)
	table[2] = true
	res, err := MultiSearch(nw, Spec{
		SpaceSize: 9, Instances: 1, Eval: LocalEval([][]bool{table}, 1), Passes: 1,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passes != 1 {
		t.Errorf("passes = %d, want 1", res.Passes)
	}
}

func TestDefaultPassesLogarithmic(t *testing.T) {
	if p := defaultPasses(1); p < 1 {
		t.Error("at least one pass required")
	}
	p1024 := defaultPasses(1024)
	if p1024 != 3+2*10 {
		t.Errorf("defaultPasses(1024) = %d", p1024)
	}
	// Growth is logarithmic: doubling m adds a constant.
	if d := defaultPasses(2048) - p1024; d != 2 {
		t.Errorf("pass growth per doubling = %d", d)
	}
}

func TestMultiSearchSuccessRateMeetsTheorem3(t *testing.T) {
	// Empirical check of the 1 - 2/m² style guarantee: across many seeded
	// runs with solvable instances, the all-found rate must be ≥ 95%.
	rng := xrand.New(12)
	const runs = 40
	failures := 0
	for run := 0; run < runs; run++ {
		r := rng.SplitN("run", run)
		nw := newNet(t, 4)
		const m, size = 30, 16
		tables := make([][]bool, m)
		for i := range tables {
			tables[i] = make([]bool, size)
			tables[i][r.IntN(size)] = true
		}
		res, err := MultiSearch(nw, Spec{SpaceSize: size, Instances: m, Eval: LocalEval(tables, 1)}, r)
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllFound() {
			failures++
		}
	}
	if float64(failures)/runs > 0.05 {
		t.Errorf("multi-search failed %d/%d runs", failures, runs)
	}
}

func TestIterationsBoundedBySchedule(t *testing.T) {
	rng := xrand.New(13)
	nw := newNet(t, 4)
	const size = 64
	res, err := Search(nw, size, LocalEval([][]bool{make([]bool, size)}, 1), rng)
	if err != nil {
		t.Fatal(err)
	}
	// Per pass: maxRounds drawing j ≤ √|X| each → iterations bounded by
	// passes × maxRounds × (√|X|+1).
	maxRounds := 4 + 3*int(math.Ceil(math.Log2(float64(size+1))))
	bound := int64(res.Passes) * int64(maxRounds) * int64(math.Sqrt(size)+1)
	if res.Iterations > bound {
		t.Errorf("iterations %d exceed schedule bound %d", res.Iterations, bound)
	}
}
