package qsearch

import (
	"testing"

	"qclique/internal/congest"
	"qclique/internal/xrand"
)

// TestScratchDeterminism asserts the pooled==fresh contract: MultiSearch
// through one reused Scratch returns exactly the results of scratchless
// calls, across repeated invocations that leave stale state behind.
func TestScratchDeterminism(t *testing.T) {
	const m, size = 60, 16
	rng := xrand.New(7)
	tables := make([][]bool, m)
	for i := range tables {
		tables[i] = make([]bool, size)
		if i%5 != 0 { // leave some instances unsatisfiable
			tables[i][rng.IntN(size)] = true
		}
	}
	sc := &Scratch{}
	for trial := 0; trial < 3; trial++ {
		spec := Spec{SpaceSize: size, Instances: m, Eval: LocalEval(tables, 1), Workers: 3}
		freshNet, _ := congest.NewNetwork(4)
		fresh, err := MultiSearch(freshNet, spec, xrand.New(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		spec.Scratch = sc
		pooledNet, _ := congest.NewNetwork(4)
		pooled, err := MultiSearch(pooledNet, spec, xrand.New(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		if fresh.EvalCalls != pooled.EvalCalls || fresh.Iterations != pooled.Iterations || fresh.Passes != pooled.Passes {
			t.Fatalf("trial %d: cost drivers diverged (fresh %+v pooled %+v)", trial, fresh, pooled)
		}
		if freshNet.Rounds() != pooledNet.Rounds() {
			t.Fatalf("trial %d: rounds %d != %d", trial, pooledNet.Rounds(), freshNet.Rounds())
		}
		for i := range fresh.Found {
			if fresh.Found[i] != pooled.Found[i] || fresh.Witness[i] != pooled.Witness[i] {
				t.Fatalf("trial %d instance %d: fresh (%v,%d) pooled (%v,%d)",
					trial, i, fresh.Found[i], fresh.Witness[i], pooled.Found[i], pooled.Witness[i])
			}
		}
	}
}

// TestScratchShrinkingInstances re-runs a scratch on a smaller spec so the
// stale tail of its buffers (previous Found/Witness entries) must not leak
// into the shorter result.
func TestScratchShrinkingInstances(t *testing.T) {
	sc := &Scratch{}
	big := make([][]bool, 30)
	for i := range big {
		big[i] = []bool{true, false}
	}
	net, _ := congest.NewNetwork(2)
	if _, err := MultiSearch(net, Spec{SpaceSize: 2, Instances: 30, Eval: LocalEval(big, 1), Scratch: sc}, xrand.New(1)); err != nil {
		t.Fatal(err)
	}
	small := [][]bool{{false, false}, {false, true}}
	res, err := MultiSearch(net, Spec{SpaceSize: 2, Instances: 2, Eval: LocalEval(small, 1), Scratch: sc}, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Found) != 2 || len(res.Witness) != 2 {
		t.Fatalf("result length %d/%d, want 2", len(res.Found), len(res.Witness))
	}
	if res.Found[0] || res.Witness[0] != -1 {
		t.Fatalf("stale scratch state leaked into unsatisfiable instance: %+v", res)
	}
	if !res.Found[1] || res.Witness[1] != 1 {
		t.Fatalf("satisfiable instance wrong: %+v", res)
	}
}
